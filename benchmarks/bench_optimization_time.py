"""EXP-PERF — the paper's performance goal.

"Moderately complex queries should be optimized on today's workstations
in less than 1 sec."  (The paper's machine: a 25 MHz DECstation 5000/125.)
We benchmark optimization wall time for Queries 1-4 plus a deliberately
wide five-collection join.
"""

import pytest

import common

FIVE_WAY = (
    "SELECT Newobject(e.name(), d.name(), j.name(), t.name()) "
    "FROM Employee e IN Employees, Department d IN extent(Department), "
    "Job j IN extent(Job), Task t IN Tasks, Country n IN extent(Country) "
    "WHERE e.department == d AND e.job == j AND d.floor == 3 "
    "AND t.time == 100 AND n.name != 'x'"
)

QUERIES = {
    "Q1": common.QUERY_1,
    "Q2": common.QUERY_2,
    "Q3": common.QUERY_3,
    "Q4": common.QUERY_4,
    "five-way-join": FIVE_WAY,
}


@pytest.mark.parametrize("name", list(QUERIES))
def test_optimization_under_one_second(full_catalog, benchmark, name):
    result = benchmark(lambda: common.optimize(full_catalog, QUERIES[name]))
    assert result.optimization_seconds < 1.0
    common.REPORTS.setdefault(
        "Optimization times (EXP-PERF)",
        "Optimization wall time per query (paper goal: < 1 s)\n",
    )
    common.REPORTS["Optimization times (EXP-PERF)"] += (
        f"  {name:14} {result.optimization_seconds * 1000:8.1f} ms   "
        f"({result.groups} groups, {result.stats.mexprs_generated} exprs, "
        f"{result.stats.optimization_tasks} tasks)\n"
    )


def main() -> None:
    catalog = common.paper_catalog()
    print("Optimization wall time per query (paper goal: < 1 s)")
    for name, sql in QUERIES.items():
        result = common.optimize(catalog, sql)
        print(
            f"  {name:14} {result.optimization_seconds * 1000:8.1f} ms  "
            f"({result.groups} groups, "
            f"{result.stats.mexprs_generated} expressions)"
        )


if __name__ == "__main__":
    main()
