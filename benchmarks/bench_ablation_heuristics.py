"""EXP-ABL-HEURISTICS — evaluating heuristic guidance and pruning.

The paper's future work #2: "although the Volcano optimizer generator
provides mechanisms for heuristic guidance and pruning, we have not
evaluated them for object-oriented query optimization yet."  This bench
performs that evaluation: for Queries 1-4, sweep the candidate cap
(promise-ordered greedy descent) and the aggressive-pruning factor,
reporting search effort against plan quality relative to the exhaustive
optimum.
"""

import common
from repro.optimizer import OptimizerConfig

SWEEP = [
    ("exhaustive", OptimizerConfig()),
    ("cap=4", OptimizerConfig().with_heuristics(candidate_cap=4)),
    ("cap=2", OptimizerConfig().with_heuristics(candidate_cap=2)),
    ("cap=1 (greedy)", OptimizerConfig().with_heuristics(candidate_cap=1)),
    ("prune 0.5", OptimizerConfig().with_heuristics(prune_factor=0.5)),
]

QUERIES = {
    "Q1": common.QUERY_1,
    "Q2": common.QUERY_2,
    "Q3": common.QUERY_3,
    "Q4": common.QUERY_4,
}


def run_sweep(catalog):
    results = {}
    for qname, sql in QUERIES.items():
        optimal = common.optimize(catalog, sql).cost.total
        for label, config in SWEEP:
            result = common.optimize(catalog, sql, config)
            results[(qname, label)] = (
                result.stats.total_effort,
                result.cost.total / optimal,
            )
    return results


def build_report(results) -> str:
    rows = []
    for qname in QUERIES:
        base_effort = results[(qname, "exhaustive")][0]
        for label, _ in SWEEP:
            effort, quality = results[(qname, label)]
            rows.append(
                [
                    qname,
                    label,
                    f"{100 * effort / base_effort:.0f}%",
                    f"{quality:.2f}x",
                ]
            )
    return common.format_table(
        ["query", "mode", "search effort", "plan cost vs optimal"],
        rows,
        "Heuristic guidance and pruning evaluation (paper future work #2).",
    )


def test_heuristics_tradeoff(full_catalog, benchmark):
    results = benchmark.pedantic(
        run_sweep, args=(full_catalog,), iterations=1, rounds=1
    )
    common.register_report("Heuristics ablation (EXP-ABL)", build_report(results))
    for qname in QUERIES:
        base_effort, base_quality = results[(qname, "exhaustive")]
        assert base_quality == 1.0
        greedy_effort, greedy_quality = results[(qname, "cap=1 (greedy)")]
        # Heuristic modes spend no more effort...
        assert greedy_effort <= base_effort
        # ...and never return an invalid plan (quality is finite).
        assert greedy_quality >= 1.0
        # The safe-pruning optimum must be re-found with caps >= 4 for the
        # paper queries (their plan space is narrow enough).
        cap4_quality = results[(qname, "cap=4")][1]
        assert cap4_quality < 20.0


def main() -> None:
    results = run_sweep(common.paper_catalog())
    print(build_report(results))


if __name__ == "__main__":
    main()
