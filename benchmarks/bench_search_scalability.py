"""EXP-PERF-SCALE — search-space growth with query size.

The paper claims "exhaustive search and therefore truly optimal plans are
feasible for moderately complex queries".  This bench characterises the
boundary: optimization effort for join chains of growing width, with and
without heuristics.
"""

import time

import common
from repro.optimizer import OptimizerConfig

# Growing chains of collection ranges with OID-join predicates.
_RANGES = [
    ("Employee e IN Employees", None),
    ("Department d IN extent(Department)", "e.department == d"),
    ("Job j IN extent(Job)", "e.job == j"),
    ("Task t IN Tasks", "t.time == 100"),
    ("Country n IN extent(Country)", "n.name != 'x'"),
    ("Person p IN extent(Person)", "n.president == p"),
]


def chain_query(width: int) -> str:
    ranges = ", ".join(r for r, _ in _RANGES[:width])
    conds = [c for _, c in _RANGES[:width] if c]
    sql = f"SELECT e.name FROM {ranges}"
    if conds:
        sql += " WHERE " + " AND ".join(conds)
    return sql


def run_scaling(catalog):
    rows = []
    for width in range(1, len(_RANGES) + 1):
        sql = chain_query(width)
        started = time.perf_counter()
        result = common.optimize(catalog, sql)
        elapsed = time.perf_counter() - started
        started = time.perf_counter()
        unrewritten = common.optimize(
            catalog, sql, OptimizerConfig().with_rewrites(False)
        )
        raw_elapsed = time.perf_counter() - started
        capped = common.optimize(
            catalog, sql, OptimizerConfig().with_heuristics(candidate_cap=2)
        )
        rows.append(
            (
                width,
                elapsed,
                result.groups,
                result.stats.mexprs_generated,
                result.cost.total,
                raw_elapsed,
                unrewritten.groups,
                capped.stats.total_effort / max(1, result.stats.total_effort),
                capped.cost.total / result.cost.total,
            )
        )
    return rows


def build_report(rows) -> str:
    table = [
        [
            str(width),
            f"{elapsed * 1000:.0f}",
            str(groups),
            str(mexprs),
            f"{cost:.1f}",
            f"{raw_elapsed * 1000:.0f}",
            str(raw_groups),
            f"{100 * effort_ratio:.0f}%",
            f"{quality:.2f}x",
        ]
        for (
            width,
            elapsed,
            groups,
            mexprs,
            cost,
            raw_elapsed,
            raw_groups,
            effort_ratio,
            quality,
        ) in rows
    ]
    return common.format_table(
        [
            "collections",
            "opt [ms]",
            "groups",
            "expressions",
            "est cost [s]",
            "no-rewrite [ms]",
            "no-rw groups",
            "cap-2 effort",
            "cap-2 quality",
        ],
        table,
        "Exhaustive-search scalability over join-chain width "
        "(pre-memo rewrites on vs off).",
    )


def test_search_scales_to_moderately_complex(full_catalog, benchmark):
    rows = benchmark.pedantic(run_scaling, args=(full_catalog,), iterations=1, rounds=1)
    common.register_report("Search scalability (EXP-PERF)", build_report(rows))
    by_width = {w: r for (w, *r) in [(row[0], row) for row in rows]}
    # The paper's goal holds through five collections.
    for row in rows:
        width, elapsed = row[0], row[1]
        if width <= 5:
            assert elapsed < 1.0, f"width {width} took {elapsed:.2f}s"
    # Effort grows with width (the space is real).
    assert rows[-1][3] > rows[0][3]


def main() -> None:
    print(build_report(run_scaling(common.paper_catalog())))


if __name__ == "__main__":
    main()
