"""EXP-EXEC — validation: optimizer estimates vs simulated execution.

Runs every paper query's chosen plan AND a deliberately crippled plan
against the populated (10% scale) store, reporting estimated cost next to
simulated I/O time.  Absolute values differ (estimates assume full-scale
cardinalities, the store is scaled), but the *ordering* the optimizer
relies on must hold in the simulation, and all plan alternatives must
return identical rows.
"""

from collections import Counter

import pytest

import common
from repro.engine.tuples import row_key
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

CRIPPLED = OptimizerConfig().without(
    C.COLLAPSE_TO_INDEX_SCAN, C.MAT_TO_JOIN, C.POINTER_JOIN
)

QUERIES = {
    "Q1": common.QUERY_1,
    "Q2": common.QUERY_2,
    "Q3": common.QUERY_3,
    "Q4": common.QUERY_4,
}


def run_validation(db):
    rows = []
    for name, sql in QUERIES.items():
        chosen = db.query(sql)
        crippled = db.query(sql, config=CRIPPLED)
        assert Counter(map(row_key, chosen.rows)) == Counter(
            map(row_key, crippled.rows)
        ), name
        rows.append(
            (
                name,
                chosen.optimization.cost.total,
                chosen.execution.simulated_io_seconds,
                crippled.optimization.cost.total,
                crippled.execution.simulated_io_seconds,
                len(chosen.rows),
            )
        )
    return rows


def build_report(rows) -> str:
    table_rows = [
        [
            name,
            f"{est:.2f}",
            f"{sim:.2f}",
            f"{bad_est:.2f}",
            f"{bad_sim:.2f}",
            str(count),
        ]
        for name, est, sim, bad_est, bad_sim, count in rows
    ]
    return common.format_table(
        [
            "Query",
            "chosen est[s]",
            "chosen sim[s]",
            "crippled est[s]",
            "crippled sim[s]",
            "rows",
        ],
        table_rows,
        "Estimate vs simulation (store at 10% scale; estimates at full "
        "scale — orderings must agree, absolutes need not).",
    )


def test_estimates_order_simulations(exec_db, benchmark):
    rows = benchmark.pedantic(
        run_validation, args=(exec_db,), iterations=1, rounds=1
    )
    common.register_report("Execution validation (EXP-EXEC)", build_report(rows))
    for name, est, sim, bad_est, bad_sim, _ in rows:
        assert est <= bad_est, name
        # Whenever the optimizer predicts a >=5x gap, the simulator must
        # agree on the direction with real margin.  The magnitudes may
        # differ legitimately: Query 1's pessimistic estimate stems from
        # the *unknown* Plant population ("50,000 page faults MAY result"),
        # while in the actual run the buffer pool caches the whole plant
        # segment — the very uncertainty the paper's catalog discussion is
        # about.
        if bad_est > 5 * est:
            assert bad_sim > 1.2 * sim, name


@pytest.mark.parametrize("name", list(QUERIES))
def test_execution_throughput(exec_db, benchmark, name):
    """Wall-clock execution of the chosen plan (pytest-benchmark metric)."""
    plan = exec_db.optimize(QUERIES[name]).plan
    benchmark(lambda: exec_db.execute_plan(plan))


def main() -> None:
    db = common.exec_database(scale=0.1)
    print(build_report(run_validation(db)))


if __name__ == "__main__":
    main()
