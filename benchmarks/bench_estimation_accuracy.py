"""EXP-ABL-ESTIMATION — selectivity estimation accuracy.

The paper: the 10% default "is naive and will later be replaced by a more
accurate selectivity estimation method."  This bench measures that
replacement: for a panel of predicates over the populated store, compare
estimated row counts under (a) the paper's naive default, (b) index-
assisted distinct counts, and (c) ANALYZE-built histograms/MCVs, against
ground truth.
"""

import math

import common
from repro.api import Database

PREDICATE_PANEL = [
    ("population >= 900k", 'SELECT * FROM c IN Cities WHERE c.population >= 900000'),
    ("population < 50k", "SELECT * FROM c IN Cities WHERE c.population < 50000"),
    ("pop in [400k,600k)", "SELECT * FROM c IN Cities WHERE c.population >= 400000 AND c.population < 600000"),
    ("name == city7", 'SELECT * FROM c IN Cities WHERE c.name == "city7"'),
    ("age == 30", "SELECT * FROM e IN Employees WHERE e.age == 30"),
    ("salary >= 80k", "SELECT * FROM e IN Employees WHERE e.salary >= 80000"),
]


def q_error(estimate: float, actual: float) -> float:
    """The standard q-error: max(est/act, act/est), floored at 1."""
    estimate = max(estimate, 0.5)
    actual = max(actual, 0.5)
    return max(estimate / actual, actual / estimate)


def run_panel(db: Database, label_rows: list) -> None:
    for label, sql in PREDICATE_PANEL:
        estimate = db.optimize(sql, config=None).plan.rows
        actual = len(db.query(sql).rows)
        label_rows.append((label, estimate, actual))


def run_accuracy(scale: float = 0.1):
    naive_db = Database.sample(scale=scale)
    analyzed_db = Database.sample(scale=scale)
    analyzed_db.analyze("Cities")
    analyzed_db.analyze("Employees")

    naive_rows: list = []
    refined_rows: list = []
    run_panel(naive_db, naive_rows)
    run_panel(analyzed_db, refined_rows)
    return naive_rows, refined_rows


def build_report(naive_rows, refined_rows) -> str:
    rows = []
    naive_errors, refined_errors = [], []
    for (label, naive_est, actual), (_, refined_est, _) in zip(
        naive_rows, refined_rows
    ):
        naive_errors.append(q_error(naive_est, actual))
        refined_errors.append(q_error(refined_est, actual))
        rows.append(
            [
                label,
                f"{naive_est:.0f}",
                f"{refined_est:.0f}",
                f"{actual}",
                f"{naive_errors[-1]:.1f}",
                f"{refined_errors[-1]:.1f}",
            ]
        )
    gmean = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))
    rows.append(
        [
            "geometric-mean q-error",
            "",
            "",
            "",
            f"{gmean(naive_errors):.2f}",
            f"{gmean(refined_errors):.2f}",
        ]
    )
    return common.format_table(
        ["predicate", "naive est", "analyzed est", "actual", "naive q-err", "analyzed q-err"],
        rows,
        "Selectivity estimation accuracy at 10% scale "
        "(the paper's 10% default vs ANALYZE histograms/MCVs).",
    )


def test_analyze_improves_estimates(benchmark):
    naive_rows, refined_rows = benchmark.pedantic(
        run_accuracy, iterations=1, rounds=1
    )
    common.register_report(
        "Estimation accuracy (EXP-ABL)", build_report(naive_rows, refined_rows)
    )
    naive_err = [q_error(e, a) for _, e, a in naive_rows]
    refined_err = [q_error(e, a) for _, e, a in refined_rows]
    gmean = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))
    assert gmean(refined_err) < gmean(naive_err)
    # Histograms keep every estimate within a modest q-error.
    assert max(refined_err) < 10.0


def main() -> None:
    print(build_report(*run_accuracy()))


if __name__ == "__main__":
    main()
