"""EXP-SERVING — serving-tier throughput and tail latency.

Drives a real :class:`DatabaseServer` over loopback TCP with concurrent
:class:`ServerClient` sessions and measures statement throughput plus
p50/p99 latency across a small matrix of session counts and read/write
mixes.  Reads are point lookups (cached plans); writes are single-city
UPDATEs spread across disjoint key ranges so the numbers measure the
serving path — protocol, admission, MVCC commit — rather than
write-write conflict retries.

Deliberately NOT part of the perf-gate baseline (``bench_quick.py``):
socket scheduling and thread interleaving make wall times far noisier
than the optimizer microbenchmarks the gate protects.  The regenerated
table ships in ``BENCH_ALL.json`` via ``run_all.py`` instead.
"""

import os
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

import common
from repro.api import Database
from repro.server import DatabaseServer, ServerClient

SESSION_COUNTS = (1, 4, 16)
#: (write fraction, label) — every session interleaves reads and writes.
MIXES = ((0.0, "read-only"), (0.1, "90/10"), (0.5, "50/50"))
OPS_PER_SESSION = 40
CITY_COUNT = 200  # scale 0.02 generates city0..city199


def serving_database(scale: float = 0.02) -> Database:
    """A private populated database for one benchmark run."""
    return Database.sample(scale=scale)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def _session_ops(session_index: int, write_fraction: float) -> list[str]:
    """The deterministic statement list one session executes."""
    ops = []
    write_every = int(1 / write_fraction) if write_fraction else 0
    for i in range(OPS_PER_SESSION):
        city = f"city{(session_index * OPS_PER_SESSION + i) % CITY_COUNT}"
        if write_every and i % write_every == 0:
            ops.append(
                f"UPDATE x IN Cities SET x.population = {i} "
                f"WHERE x.name == '{city}'"
            )
        else:
            ops.append(
                f"SELECT x.population FROM x IN Cities "
                f"WHERE x.name == '{city}'"
            )
    return ops


def measure_serving(
    db=None,
    session_counts=SESSION_COUNTS,
    mixes=MIXES,
) -> list[dict]:
    """Throughput and latency percentiles for each (sessions, mix) cell."""
    db = db or serving_database()
    rows = []
    for write_fraction, mix_label in mixes:
        for sessions in session_counts:
            server = DatabaseServer(
                db, port=0, max_concurrent=8, max_wait_ms=60_000.0
            )
            host, port = server.start()
            latencies: list[list[float]] = [[] for _ in range(sessions)]
            errors: list[str] = []
            gate = threading.Event()

            def worker(index):
                try:
                    with ServerClient(host, port, timeout=120.0) as client:
                        ops = _session_ops(index, write_fraction)
                        gate.wait()
                        for text in ops:
                            started = time.perf_counter()
                            client.query(text)
                            latencies[index].append(
                                time.perf_counter() - started
                            )
                except Exception as exc:  # noqa: BLE001 — reported below
                    errors.append(repr(exc))

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(sessions)
            ]
            for thread in threads:
                thread.start()
            wall_started = time.perf_counter()
            gate.set()
            for thread in threads:
                thread.join(timeout=300.0)
            wall = time.perf_counter() - wall_started
            server.stop(drain=False)
            assert not errors, errors[:3]
            flat = sorted(x for chunk in latencies for x in chunk)
            rows.append(
                {
                    "mix": mix_label,
                    "sessions": sessions,
                    "ops": len(flat),
                    "wall_s": wall,
                    "throughput": len(flat) / wall if wall else 0.0,
                    "p50_ms": _percentile(flat, 0.50) * 1000,
                    "p99_ms": _percentile(flat, 0.99) * 1000,
                }
            )
    return rows


@pytest.fixture(scope="module")
def serving_db():
    return serving_database()


def test_serving_completes_all_ops(serving_db):
    rows = measure_serving(
        serving_db, session_counts=(1, 4), mixes=((0.5, "50/50"),)
    )
    for row in rows:
        assert row["ops"] == row["sessions"] * OPS_PER_SESSION
        assert row["throughput"] > 0


def test_tail_latency_is_ordered(serving_db):
    rows = measure_serving(
        serving_db, session_counts=(4,), mixes=((0.0, "read-only"),)
    )
    (row,) = rows
    assert row["p99_ms"] >= row["p50_ms"] > 0


def report(rows: list[dict]) -> str:
    return common.format_table(
        ["mix", "sessions", "ops", "ops/s", "p50 ms", "p99 ms"],
        [
            [
                r["mix"],
                str(r["sessions"]),
                str(r["ops"]),
                f"{r['throughput']:.0f}",
                f"{r['p50_ms']:.2f}",
                f"{r['p99_ms']:.2f}",
            ]
            for r in rows
        ],
        "Serving-tier throughput and latency over loopback TCP",
    )


def main() -> None:
    text = report(measure_serving())
    common.register_report("Serving tier (EXP-SERVING)", text)
    print(text)


if __name__ == "__main__":
    main()
