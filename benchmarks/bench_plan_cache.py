"""EXP-CACHE — repeated-query throughput with the plan cache.

A workload of 100 Query 1 executions whose only difference is the
constant (``location == "Dallas"`` vs ``"Austin"`` vs ...).  With the
cache off every execution pays the full Volcano search; with the cache
on the optimizer runs once and the remaining 99 executions re-bind the
cached plan.  The report shows both wall times and the cache counters.
"""

import time

import common

from repro.api import Database

RUNS = 100
SCALE = 0.02

QUERY_1_TEMPLATE = (
    "SELECT Newobject(e.name(), e.department().name(), e.job().name()) "
    "FROM Employee e IN Employees "
    'WHERE e.department().plant().location() == "{location}"'
)
LOCATIONS = ("Dallas", "Austin", "Tulsa", "Reno", "Fresno")


def run_workload(use_cache: bool) -> tuple[float, Database]:
    """Run the 100-query workload and return (wall seconds, database)."""
    db = Database.sample(scale=SCALE)
    queries = [
        QUERY_1_TEMPLATE.format(location=LOCATIONS[i % len(LOCATIONS)])
        for i in range(RUNS)
    ]
    started = time.perf_counter()
    for text in queries:
        db.query(text, use_cache=use_cache)
    return time.perf_counter() - started, db


def test_cache_amortizes_optimization():
    cold_seconds, _ = run_workload(use_cache=False)
    warm_seconds, db = run_workload(use_cache=True)
    stats = db.plan_cache.stats

    # The optimizer ran exactly once for the whole varying-constant
    # workload; every other execution re-bound the cached plan.
    assert stats.misses == 1
    assert stats.hits == RUNS - 1
    assert stats.evictions == 0
    assert warm_seconds < cold_seconds

    common.register_report(
        "Plan cache throughput (EXP-CACHE)",
        common.format_table(
            ["workload", "wall time", "per query"],
            [
                [
                    f"cache off ({RUNS}x Query 1)",
                    f"{cold_seconds * 1000:.1f} ms",
                    f"{cold_seconds / RUNS * 1000:.2f} ms",
                ],
                [
                    f"cache on  ({RUNS}x Query 1)",
                    f"{warm_seconds * 1000:.1f} ms",
                    f"{warm_seconds / RUNS * 1000:.2f} ms",
                ],
            ],
            f"Query 1 repeated with varying constants (scale {SCALE})",
        )
        + f"\n  speedup {cold_seconds / warm_seconds:.1f}x; {stats.describe()}\n",
    )


def main() -> None:
    cold_seconds, _ = run_workload(use_cache=False)
    warm_seconds, db = run_workload(use_cache=True)
    stats = db.plan_cache.stats
    print(f"Query 1 x {RUNS} with varying constants (scale {SCALE})")
    print(
        f"  cache off  {cold_seconds * 1000:8.1f} ms "
        f"({cold_seconds / RUNS * 1000:.2f} ms/query)"
    )
    print(
        f"  cache on   {warm_seconds * 1000:8.1f} ms "
        f"({warm_seconds / RUNS * 1000:.2f} ms/query)"
    )
    print(f"  speedup    {cold_seconds / warm_seconds:8.1f}x")
    print(f"  {stats.describe()}")


if __name__ == "__main__":
    main()
