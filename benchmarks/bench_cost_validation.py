"""EXP-COST-VALIDATION — cost formulas vs the operational executor.

The validation the paper defers ("we delay validating and refining
assembly's cost function until the query plan executor becomes
operational"): each I/O cost formula is a closed-form approximation of
the simulator's emergent behaviour (buffer hits, elevator dedup, head
position); this bench measures how closely they track.
"""

import common
from repro.optimizer.calibration import CostModelValidator


def run_validation(scale: float = 0.1):
    db = common.exec_database(scale=scale)
    validator = CostModelValidator(db.store)
    return validator.validate_all()


def build_report(rows) -> str:
    table = [
        [
            row.operation,
            f"{row.predicted_io_s:.3f}",
            f"{row.simulated_io_s:.3f}",
            f"{row.ratio:.2f}x",
        ]
        for row in rows
    ]
    return common.format_table(
        ["operator micro-experiment", "formula [s]", "simulated [s]", "formula/sim"],
        table,
        "Cost-formula validation against the executor (10% scale).",
    )


def test_formulas_track_simulator(benchmark):
    rows = benchmark.pedantic(run_validation, iterations=1, rounds=1)
    common.register_report("Cost validation (EXP-COST)", build_report(rows))
    for row in rows:
        # Sequential scan and the bounded/sorted operators should be tight;
        # assembly over the large, thrashing Person extent is allowed the
        # widest band (the formula is deliberately pessimistic there —
        # exactly the uncertainty the paper's Query 1 discussion is about).
        assert 0.2 <= row.ratio <= 12.0, row.operation
    # The window discount must show up in the *simulator*, not just the
    # formula: window 64 <= window 8 <= window 1.
    by_name = {row.operation: row for row in rows}
    w1 = by_name["assembly window=1 (mayors)"].simulated_io_s
    w8 = by_name["assembly window=8 (mayors)"].simulated_io_s
    w64 = by_name["assembly window=64 (mayors)"].simulated_io_s
    assert w64 <= w8 <= w1


def main() -> None:
    print(build_report(run_validation()))


if __name__ == "__main__":
    main()
