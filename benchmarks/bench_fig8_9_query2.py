"""EXP-F8/F9 — Figures 8-9: Query 2 and the collapse-to-index-scan rule.

Figure 8: with a path index on Cities over mayor.name, the whole
Select-Mat-Get chain collapses into one index scan that never fetches a
mayor (paper: 0.08 s).  Figure 9: without the rule, every mayor must be
assembled (paper: 119.6 s) — three to four orders of magnitude.
"""

import common
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

FIG9_CONFIG = OptimizerConfig().without(
    C.COLLAPSE_TO_INDEX_SCAN, C.MAT_TO_JOIN, C.POINTER_JOIN
)


def run(catalog):
    optimal = common.optimize(catalog, common.QUERY_2)
    crippled = common.optimize(catalog, common.QUERY_2, FIG9_CONFIG)
    fallback = common.optimize(
        catalog, common.QUERY_2, OptimizerConfig().without(C.COLLAPSE_TO_INDEX_SCAN)
    )
    return optimal, crippled, fallback


def build_report(optimal, crippled, fallback) -> str:
    return "\n".join(
        [
            f"Figure 8. Optimal plan (est. {optimal.cost.total:.3f}s; paper 0.08s):",
            optimal.plan.pretty(indent=2),
            "",
            f"Figure 9. Plan w/o collapse-to-index-scan (est. "
            f"{crippled.cost.total:.1f}s; paper 119.6s):",
            crippled.plan.pretty(indent=2),
            "",
            f"Ratio: {crippled.cost.total / optimal.cost.total:.0f}x "
            "(paper: ~1500x, 'about four orders of magnitude').",
            "",
            "Bonus: with only the collapse rule disabled, our optimizer still",
            f"finds a set-matching fallback (est. {fallback.cost.total:.1f}s):",
            fallback.plan.pretty(indent=2),
        ]
    )


def test_figures_8_9(full_catalog, benchmark):
    optimal, crippled, fallback = benchmark.pedantic(
        run, args=(full_catalog,), iterations=1, rounds=1
    )
    common.register_report(
        "Figures 8-9 (EXP-F8/9)", build_report(optimal, crippled, fallback)
    )
    assert optimal.plan.algorithm == "IndexScan"
    assert optimal.plan.delivered.in_memory == {"c"}
    crippled_algos = [n.algorithm for n in crippled.plan.walk()]
    assert crippled_algos == ["Filter", "Assembly", "FileScan"]
    assert crippled.cost.total > 100 * optimal.cost.total
    assert fallback.cost.total < crippled.cost.total


def main() -> None:
    print(build_report(*run(common.paper_catalog())))


if __name__ == "__main__":
    main()
