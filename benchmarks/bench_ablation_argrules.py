"""EXP-ABL-ARGRULES — ablation: Lesson 9's argument transformation rules.

Measures what predicate normalization buys: contradiction detection turns
an unsatisfiable query into a constant-false filter over a scan the
executor never expands, and bound tightening shrinks the conjunct count
the optimizer and executor must evaluate.
"""

import common
from repro.lang.parser import parse_query
from repro.optimizer import Optimizer, OptimizerConfig
from repro.simplify.simplifier import Simplifier

CONTRADICTION = (
    "SELECT * FROM e IN Employees "
    "WHERE e.age == 30 AND e.age == 31 AND e.department.floor == 3"
)
REDUNDANT = (
    "SELECT * FROM e IN Employees WHERE e.age > 20 AND e.age > 30 "
    "AND e.age > 40 AND e.age <= 60 AND e.age <= 55"
)


def run_ablation(catalog):
    results = {}
    for label, rules in (("normalized", None), ("raw", ())):
        simplifier = Simplifier(catalog, argument_rules=rules)
        for qlabel, sql in (
            ("contradiction", CONTRADICTION),
            ("redundant-bounds", REDUNDANT),
        ):
            simplified = simplifier.__class__(
                catalog, argument_rules=rules
            ).simplify_full(parse_query(sql))
            result = Optimizer(catalog, OptimizerConfig()).optimize(
                simplified.tree, result_vars=simplified.result_vars
            )
            conjuncts = _conjunct_count(simplified.tree)
            results[(label, qlabel)] = (conjuncts, result.plan.rows, result.cost.total)
    return results


def _conjunct_count(tree) -> int:
    from repro.algebra.operators import Select

    node = tree
    while node.children:
        if isinstance(node, Select):
            return len(node.predicate.comparisons)
        node = node.children[0]
    return 0


def build_report(results) -> str:
    rows = []
    for (label, qlabel), (conjuncts, est_rows, cost) in sorted(results.items()):
        rows.append(
            [qlabel, label, str(conjuncts), f"{est_rows:.1f}", f"{cost:.2f}"]
        )
    return common.format_table(
        ["query", "argument rules", "conjuncts", "est rows", "est cost [s]"],
        rows,
        "Argument transformation rules ablation (Lesson 9).",
    )


def test_argument_rules_payoff(full_catalog, benchmark):
    results = benchmark.pedantic(
        run_ablation, args=(full_catalog,), iterations=1, rounds=1
    )
    common.register_report(
        "Argument rules ablation (EXP-ABL)", build_report(results)
    )
    # Contradiction detection: the normalized plan knows it returns nothing.
    assert results[("normalized", "contradiction")][1] == 0.0
    assert results[("raw", "contradiction")][1] > 0.0
    # Bound tightening: five conjuncts collapse to two.
    assert results[("normalized", "redundant-bounds")][0] == 2
    assert results[("raw", "redundant-bounds")][0] == 5


def main() -> None:
    print(build_report(run_ablation(common.paper_catalog())))


if __name__ == "__main__":
    main()
