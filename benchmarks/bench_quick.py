#!/usr/bin/env python3
"""Quick benchmark subset for the CI perf-regression gate.

Runs in well under a minute and writes a machine-readable JSON file
(``BENCH_PR.json`` by default) that ``check_regression.py`` compares
against the committed ``BENCH_BASELINE.json``.  Metrics mix three kinds
of signal:

* optimizer wall time (median of several runs, the paper's < 1 s goal);
* deterministic simulated-execution numbers (page reads, simulated I/O),
  which catch plan or cost-model regressions with zero timer noise;
* the exchange operator's 4-worker speedup, gated by an absolute floor
  (the ``floor`` field) rather than a relative delta, since speedups
  vary with host core count more than with code changes.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import common
from bench_parallel import measure, parallel_database

OPTIMIZE_REPEATS = 9
CACHE_HIT_REPEATS = 9


def _best_wall(fn, repeats: int, inner: int = 3) -> float:
    """Noise-robust wall time: min over ``repeats`` of a batched sample.

    One warmup call absorbs lazy imports and cache fills; each sample
    averages ``inner`` back-to-back calls so scheduler hiccups shorter
    than a batch cannot dominate; taking the minimum discards samples a
    busy host inflated (speeding code up is not a thing noise does).
    """
    fn()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def collect() -> dict[str, dict]:
    """Run the quick subset and return the metric table."""
    metrics: dict[str, dict] = {}
    catalog = common.paper_catalog()

    for name, sql in (("q1", common.QUERY_1), ("q4", common.QUERY_4)):
        seconds = _best_wall(
            lambda sql=sql: common.optimize(catalog, sql), OPTIMIZE_REPEATS
        )
        metrics[f"optimize_{name}_ms"] = {
            "value": round(seconds * 1000, 3),
            "unit": "ms",
            "higher_is_better": False,
        }

    # Search-time gate: a five-collection slice of the scalability
    # bench's join chain.  Wall time catches rewrite/search slowdowns;
    # the memo group count is deterministic and catches search-space
    # blowups (a disabled rewrite stage, a new unfused operator) with
    # zero timer noise.
    from bench_search_scalability import chain_query

    chain_sql = chain_query(5)
    seconds = _best_wall(
        lambda: common.optimize(catalog, chain_sql), OPTIMIZE_REPEATS
    )
    metrics["optimize_chain5_ms"] = {
        "value": round(seconds * 1000, 3),
        "unit": "ms",
        "higher_is_better": False,
    }
    metrics["memo_groups_chain5"] = {
        "value": common.optimize(catalog, chain_sql).groups,
        "unit": "groups",
        "higher_is_better": False,
    }

    db = common.exec_database(scale=0.1)
    result = db.query(common.QUERY_2, use_cache=False)
    metrics["exec_q2_sim_io_ms"] = {
        "value": round(result.execution.simulated_io_seconds * 1000, 3),
        "unit": "ms",
        "higher_is_better": False,
    }
    metrics["exec_q2_page_reads"] = {
        "value": result.execution.page_reads,
        "unit": "pages",
        "higher_is_better": False,
    }

    db.query(common.QUERY_1)  # prime the plan cache
    seconds = _best_wall(
        lambda: db.query(common.QUERY_1, execute=False),
        CACHE_HIT_REPEATS,
        inner=10,
    )
    metrics["plan_cache_hit_ms"] = {
        "value": round(seconds * 1000, 3),
        "unit": "ms",
        "higher_is_better": False,
    }

    times = measure(parallel_database(scale=0.1), degrees=(1, 4), repeats=3)
    metrics["parallel_speedup_4w"] = {
        "value": round(times[1] / times[4], 2),
        "unit": "x",
        "higher_is_better": True,
        "floor": 2.0,
    }

    # Compiled-backend operator-path speedup on a scan→filter→project
    # chain, measured from pre-materialised scan output so the store's
    # simulated-I/O bookkeeping (identical on every backend) does not
    # dilute the signal.  Floor-gated like the parallel speedup: the
    # ratio tracks the host interpreter more than code changes.
    metrics["compiled_chain_speedup"] = {
        "value": round(_compiled_chain_speedup(db), 2),
        "unit": "x",
        "higher_is_better": True,
        "floor": 2.0,
    }
    return metrics


def _compiled_chain_speedup(db) -> float:
    """Interpreted vs fused-pipeline wall time over identical scan input."""
    from repro.engine import iterators
    from repro.engine.backends.compiled import (
        CompiledBackend,
        collect_consts,
        fuse_chain,
    )
    from repro.engine.tuples import Obj

    chain_query = (
        "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 10000"
    )
    chain = fuse_chain(db.optimize(chain_query).plan)
    assert chain is not None, "chain query stopped fusing"
    pairs = list(db.store.scan("Employees"))
    predicate = chain.filters[0].predicate

    def interpreted() -> int:
        rows = ({chain.scan.var: Obj(oid, data)} for oid, data in pairs)
        return sum(
            1
            for _ in iterators.project(
                iterators.filter_rows(rows, predicate),
                chain.project.items,
                chain.project.distinct,
            )
        )

    fn, _, _ = CompiledBackend().pipeline_for(chain, instrumented=False)
    consts = collect_consts(chain)

    def compiled() -> int:
        return sum(
            1 for _ in fn(iter(pairs), consts, lambda: None, 1 << 62, None)
        )

    assert interpreted() == compiled()
    return _best_wall(interpreted, repeats=5) / _best_wall(compiled, repeats=5)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="BENCH_PR.json",
        help="where to write the metric JSON (default: BENCH_PR.json)",
    )
    args = parser.parse_args(argv)

    metrics = collect()
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "metrics": metrics,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in metrics)
    for name, metric in sorted(metrics.items()):
        print(f"  {name:{width}}  {metric['value']:>10} {metric['unit']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
