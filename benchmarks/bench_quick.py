#!/usr/bin/env python3
"""Quick benchmark subset for the CI perf-regression gate.

Runs in well under a minute and writes a machine-readable JSON file
(``BENCH_PR.json`` by default) that ``check_regression.py`` compares
against the committed ``BENCH_BASELINE.json``.  Metrics mix three kinds
of signal:

* optimizer wall time (median of several runs, the paper's < 1 s goal);
* deterministic simulated-execution numbers (page reads, simulated I/O),
  which catch plan or cost-model regressions with zero timer noise;
* the exchange operator's 4-worker speedup, gated by an absolute floor
  (the ``floor`` field) rather than a relative delta, since speedups
  vary with host core count more than with code changes.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import common
from bench_parallel import measure, parallel_database

OPTIMIZE_REPEATS = 9
CACHE_HIT_REPEATS = 9


def _best_wall(fn, repeats: int, inner: int = 3) -> float:
    """Noise-robust wall time: min over ``repeats`` of a batched sample.

    One warmup call absorbs lazy imports and cache fills; each sample
    averages ``inner`` back-to-back calls so scheduler hiccups shorter
    than a batch cannot dominate; taking the minimum discards samples a
    busy host inflated (speeding code up is not a thing noise does).
    """
    fn()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def collect() -> dict[str, dict]:
    """Run the quick subset and return the metric table."""
    metrics: dict[str, dict] = {}
    catalog = common.paper_catalog()

    for name, sql in (("q1", common.QUERY_1), ("q4", common.QUERY_4)):
        seconds = _best_wall(
            lambda sql=sql: common.optimize(catalog, sql), OPTIMIZE_REPEATS
        )
        metrics[f"optimize_{name}_ms"] = {
            "value": round(seconds * 1000, 3),
            "unit": "ms",
            "higher_is_better": False,
        }

    # Search-time gate: a five-collection slice of the scalability
    # bench's join chain.  Wall time catches rewrite/search slowdowns;
    # the memo group count is deterministic and catches search-space
    # blowups (a disabled rewrite stage, a new unfused operator) with
    # zero timer noise.
    from bench_search_scalability import chain_query

    chain_sql = chain_query(5)
    seconds = _best_wall(
        lambda: common.optimize(catalog, chain_sql), OPTIMIZE_REPEATS
    )
    metrics["optimize_chain5_ms"] = {
        "value": round(seconds * 1000, 3),
        "unit": "ms",
        "higher_is_better": False,
    }
    metrics["memo_groups_chain5"] = {
        "value": common.optimize(catalog, chain_sql).groups,
        "unit": "groups",
        "higher_is_better": False,
    }

    db = common.exec_database(scale=0.1)
    result = db.query(common.QUERY_2, use_cache=False)
    metrics["exec_q2_sim_io_ms"] = {
        "value": round(result.execution.simulated_io_seconds * 1000, 3),
        "unit": "ms",
        "higher_is_better": False,
    }
    metrics["exec_q2_page_reads"] = {
        "value": result.execution.page_reads,
        "unit": "pages",
        "higher_is_better": False,
    }

    db.query(common.QUERY_1)  # prime the plan cache
    seconds = _best_wall(
        lambda: db.query(common.QUERY_1, execute=False),
        CACHE_HIT_REPEATS,
        inner=10,
    )
    metrics["plan_cache_hit_ms"] = {
        "value": round(seconds * 1000, 3),
        "unit": "ms",
        "higher_is_better": False,
    }

    times = measure(parallel_database(scale=0.1), degrees=(1, 4), repeats=3)
    metrics["parallel_speedup_4w"] = {
        "value": round(times[1] / times[4], 2),
        "unit": "x",
        "higher_is_better": True,
        "floor": 2.0,
    }

    # Compiled-backend operator-path speedup on a scan→filter→project
    # chain, measured from pre-materialised scan output so the store's
    # simulated-I/O bookkeeping (identical on every backend) does not
    # dilute the signal.  Floor-gated like the parallel speedup: the
    # ratio tracks the host interpreter more than code changes.
    metrics["compiled_chain_speedup"] = {
        "value": round(_compiled_chain_speedup(db), 2),
        "unit": "x",
        "higher_is_better": True,
        "floor": 2.0,
    }

    # Cardinality-feedback p99 on a skewed world: a repeated query whose
    # uniform-distribution estimate is off by two orders of magnitude
    # picks nested loops; the feedback loop replans it into a hash join.
    # The speedup is floor-gated (the off-side nested-loops time tracks
    # the host interpreter); the feedback-on p99 is tracked relatively.
    p99_off_ms, p99_on_ms = _skewed_feedback_p99()
    metrics["exec_skewed_p99_ms"] = {
        "value": round(p99_on_ms, 3),
        "unit": "ms",
        "higher_is_better": False,
    }
    metrics["feedback_p99_speedup"] = {
        "value": round(p99_off_ms / p99_on_ms, 2),
        "unit": "x",
        "higher_is_better": True,
        "floor": 2.0,
    }

    # Durability: per-commit log+fsync latency and recovery replay wall
    # time.  Informational only — both are dominated by the host's
    # fsync behaviour (container overlayfs vs bare metal varies by an
    # order of magnitude), so gating on a relative delta would flag
    # infrastructure, not code.  The in-memory metrics above stay the
    # enforced perf gate; these track the durable path's cost over time.
    commit_ms, replay_ms = _durability_metrics()
    metrics["commit_durable_ms"] = {
        "value": round(commit_ms, 3),
        "unit": "ms",
        "higher_is_better": False,
        "informational": True,
    }
    metrics["recovery_replay_ms"] = {
        "value": round(replay_ms, 3),
        "unit": "ms",
        "higher_is_better": False,
        "informational": True,
    }
    return metrics


#: Durable commits timed for the median, and replayed at recovery.
DURABLE_COMMITS = 40


def _durability_metrics() -> tuple[float, float]:
    """(median durable-commit ms, log-replay ms for that history)."""
    import shutil
    import statistics
    import tempfile

    from repro.api import Database
    from repro.durability.manager import DurabilityManager

    directory = tempfile.mkdtemp(prefix="repro-bench-durability-")
    try:
        db = Database.sample(scale=0.05)
        db.enable_durability(directory)
        samples = []
        for i in range(DURABLE_COMMITS):
            statement = (
                f"UPDATE c IN Cities SET c.population = {i + 1} "
                "WHERE c.name == 'city0'"
            )
            started = time.perf_counter()
            db.query(statement)
            samples.append((time.perf_counter() - started) * 1000.0)
        commit_ms = statistics.median(samples)

        fresh = Database.sample(scale=0.05)
        manager = DurabilityManager(directory)
        started = time.perf_counter()
        recovery = manager.recover(fresh)
        replay_ms = (time.perf_counter() - started) * 1000.0
        assert recovery["replayed"] == DURABLE_COMMITS
        manager.wal.close()
        return commit_ms, replay_ms
    finally:
        shutil.rmtree(directory, ignore_errors=True)


#: Repeated-query runs per feedback configuration.  p99 over 120 runs
#: discards exactly one sample, so the feedback-on side's single
#: adaptive-replan run (slow by design: it pays part of the bad plan,
#: then re-optimizes) does not define its tail.
FEEDBACK_RUNS = 120


def _skewed_feedback_p99() -> tuple[float, float]:
    """(feedback-off, feedback-on) p99 latency on a skewed world, in ms.

    The world pins 30% of ``Hot.k`` to one hot value while the index
    sees ~280 distinct keys, so the optimizer estimates ~1.4 rows for
    ``k == 0`` and picks nested loops against ``Dim``; the true output
    is ~120 rows, where a hash join is an order of magnitude faster.
    With feedback on, the first run replans mid-query and every later
    run is planned from the observed cardinality.
    """
    import math

    from repro.fuzz.worldgen import (
        AttrSpec,
        IndexSpec,
        TypeSpec,
        WorldSpec,
        build_database,
    )

    world = WorldSpec(
        types=(
            TypeSpec(
                name="Dim",
                count=160,
                attrs=(
                    AttrSpec(
                        name="s0", kind="scalar", scalar_type="int", distinct=40
                    ),
                ),
            ),
            TypeSpec(
                name="Hot",
                count=400,
                attrs=(
                    AttrSpec(
                        name="k",
                        kind="scalar",
                        scalar_type="int",
                        distinct=100_000,
                        skew=0.3,
                    ),
                    AttrSpec(
                        name="j", kind="scalar", scalar_type="int", distinct=40
                    ),
                ),
            ),
        ),
        indexes=(IndexSpec("ix_hot_k", "extent(Hot)", ("k",)),),
        data_seed=7,
    )
    text = (
        "SELECT h.j FROM Hot h IN extent(Hot), Dim d IN extent(Dim) "
        "WHERE h.k == 0 && h.j == d.s0"
    )

    def p99(samples: list[float]) -> float:
        return sorted(samples)[math.ceil(0.99 * len(samples)) - 1]

    def workload(feedback: bool) -> list[float]:
        db = build_database(world)
        if feedback:
            db.config = db.config.with_feedback(True)
        samples = []
        for _ in range(FEEDBACK_RUNS):
            started = time.perf_counter()
            db.query(text)
            samples.append((time.perf_counter() - started) * 1000.0)
        return samples

    return p99(workload(feedback=False)), p99(workload(feedback=True))


def _compiled_chain_speedup(db) -> float:
    """Interpreted vs fused-pipeline wall time over identical scan input."""
    from repro.engine import iterators
    from repro.engine.backends.compiled import (
        CompiledBackend,
        collect_consts,
        fuse_chain,
    )
    from repro.engine.tuples import Obj

    chain_query = (
        "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 10000"
    )
    chain = fuse_chain(db.optimize(chain_query).plan)
    assert chain is not None, "chain query stopped fusing"
    pairs = list(db.store.scan("Employees"))
    predicate = chain.filters[0].predicate

    def interpreted() -> int:
        rows = ({chain.scan.var: Obj(oid, data)} for oid, data in pairs)
        return sum(
            1
            for _ in iterators.project(
                iterators.filter_rows(rows, predicate),
                chain.project.items,
                chain.project.distinct,
            )
        )

    fn, _, _ = CompiledBackend().pipeline_for(chain, instrumented=False)
    consts = collect_consts(chain)

    def compiled() -> int:
        return sum(
            1 for _ in fn(iter(pairs), consts, lambda: None, 1 << 62, None)
        )

    assert interpreted() == compiled()
    return _best_wall(interpreted, repeats=5) / _best_wall(compiled, repeats=5)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="BENCH_PR.json",
        help="where to write the metric JSON (default: BENCH_PR.json)",
    )
    args = parser.parse_args(argv)

    metrics = collect()
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "metrics": metrics,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in metrics)
    for name, metric in sorted(metrics.items()):
        print(f"  {name:{width}}  {metric['value']:>10} {metric['unit']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
