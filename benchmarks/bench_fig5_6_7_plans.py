"""EXP-F5/F6/F7 — Figures 5-7: Query 1's algebra and plans.

Figure 5: the simplified logical algebra (one Mat per path link).
Figure 6: the optimal plan — Mats become hybrid hash joins, links are
traversed against the pointer direction, plants assembled per department.
Figure 7: the pointer-chasing plan the naive strategy produces.
"""

import common
from repro.lang.parser import parse_query
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C
from repro.simplify.simplifier import simplify_full


def build_figures(catalog):
    simplified = simplify_full(parse_query(common.QUERY_1), catalog)
    optimal = common.optimize(catalog, common.QUERY_1)
    naive = common.optimize(
        catalog, common.QUERY_1, OptimizerConfig().without(C.MAT_TO_JOIN)
    )
    return simplified, optimal, naive


def build_report(simplified, optimal, naive) -> str:
    lines = [
        "Figure 5. Query 1 after simplification:",
        simplified.tree.pretty(indent=2),
        "",
        f"Figure 6. Optimal execution plan (est. {optimal.cost.total:.1f}s; "
        "paper: 161s):",
        optimal.plan.pretty(indent=2),
        "",
        f"Figure 7. Plan without join rewriting (est. {naive.cost.total:.1f}s; "
        "paper: 681s):",
        naive.plan.pretty(indent=2),
        "",
        f"Ratio: {naive.cost.total / optimal.cost.total:.1f}x "
        "(paper: 4.2x, 'more than four times as expensive').",
    ]
    return "\n".join(lines)


def test_figures_5_6_7(full_catalog, benchmark):
    simplified, optimal, naive = benchmark.pedantic(
        build_figures, args=(full_catalog,), iterations=1, rounds=1
    )
    common.register_report(
        "Figures 5-7 (EXP-F5/6/7)", build_report(simplified, optimal, naive)
    )
    # Figure 5: Project / Select / Mat x3 / Get.
    names = []
    node = simplified.tree
    while True:
        names.append(type(node).__name__)
        if not node.children:
            break
        node = node.children[0]
    assert names == ["Project", "Select", "Mat", "Mat", "Mat", "Get"]

    # Figure 6: two hash joins; the filter feeds from departments.
    algos = [n.algorithm for n in optimal.plan.walk()]
    assert algos.count("HashJoin") == 2

    # Figure 7: no joins, reference navigation only.
    naive_algos = [n.algorithm for n in naive.plan.walk()]
    assert "HashJoin" not in naive_algos
    assert "Assembly" in naive_algos
    assert naive.cost.total > 4 * optimal.cost.total


def main() -> None:
    catalog = common.paper_catalog()
    print(build_report(*build_figures(catalog)))


if __name__ == "__main__":
    main()
