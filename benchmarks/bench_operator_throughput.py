"""EXP-ENGINE — wall-clock throughput of the iterator engine itself.

Not a paper artifact: these pytest-benchmark timings characterise the
Python execution substrate (rows/second through each physical operator at
10% scale), so regressions in the engine are visible independently of the
simulated-I/O clocks.
"""

import pytest

import common
from repro.algebra.operators import RefSource
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.engine import iterators


@pytest.fixture(scope="module")
def store():
    return common.exec_database(scale=0.1).store


def test_file_scan_throughput(store, benchmark):
    def scan():
        return sum(1 for _ in iterators.file_scan(store, "Cities", "c"))

    assert benchmark(scan) == store.collection_cardinality("Cities")


def test_filter_throughput(store, benchmark):
    predicate = Conjunction.of(
        Comparison(FieldRef("c", "population"), CompOp.GE, Const(500_000))
    )
    rows = list(iterators.file_scan(store, "Cities", "c"))

    def run():
        return sum(1 for _ in iterators.filter_rows(rows, predicate))

    assert benchmark(run) > 0


def test_assembly_throughput(store, benchmark):
    rows = list(iterators.file_scan(store, "Cities", "c"))

    def run():
        return sum(
            1
            for _ in iterators.assembly(
                store, rows, RefSource("c", "mayor"), "m", 8
            )
        )

    assert benchmark(run) == len(rows)


def test_hash_join_throughput(store, benchmark):
    predicate = Conjunction.of(
        Comparison(RefAttr("e", "department"), CompOp.EQ, SelfOid("d"))
    )
    employees = list(iterators.file_scan(store, "Employees", "e"))
    departments = list(
        iterators.file_scan(store, "extent(Department)", "d")
    )

    def run():
        return sum(
            1 for _ in iterators.hash_join(departments, employees, predicate)
        )

    assert benchmark(run) == len(employees)


def test_group_by_throughput(store, benchmark):
    from repro.algebra.operators import AggFunc, AggSpec, ProjectItem

    rows = list(iterators.file_scan(store, "Employees", "e"))
    keys = (ProjectItem("age", FieldRef("e", "age")),)
    aggs = (AggSpec("n", AggFunc.COUNT, None),)

    def run():
        return sum(1 for _ in iterators.group_by(rows, keys, aggs, None))

    assert benchmark(run) > 0


def test_sort_throughput(store, benchmark):
    rows = list(iterators.file_scan(store, "Cities", "c"))

    def run():
        return sum(1 for _ in iterators.sort_rows(rows, "c", "population", True))

    assert benchmark(run) == len(rows)
