"""EXP-ENGINE — wall-clock throughput of the iterator engine itself.

Not a paper artifact: these pytest-benchmark timings characterise the
Python execution substrate (rows/second through each physical operator at
10% scale), so regressions in the engine are visible independently of the
simulated-I/O clocks.
"""

import pytest

import common
from repro.algebra.operators import RefSource
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.engine import iterators
from repro.engine.backends.compiled import (
    CompiledBackend,
    collect_consts,
    fuse_chain,
)
from repro.engine.backends.vectorized import _filter_chunk, _flatten, _rechunk
from repro.engine.tuples import Obj

CHAIN_QUERY = "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 10000"


@pytest.fixture(scope="module")
def db():
    return common.exec_database(scale=0.1)


@pytest.fixture(scope="module")
def store(db):
    return db.store


def test_file_scan_throughput(store, benchmark):
    def scan():
        return sum(1 for _ in iterators.file_scan(store, "Cities", "c"))

    assert benchmark(scan) == store.collection_cardinality("Cities")


def test_filter_throughput(store, benchmark):
    predicate = Conjunction.of(
        Comparison(FieldRef("c", "population"), CompOp.GE, Const(500_000))
    )
    rows = list(iterators.file_scan(store, "Cities", "c"))

    def run():
        return sum(1 for _ in iterators.filter_rows(rows, predicate))

    assert benchmark(run) > 0


def test_assembly_throughput(store, benchmark):
    rows = list(iterators.file_scan(store, "Cities", "c"))

    def run():
        return sum(
            1
            for _ in iterators.assembly(
                store, rows, RefSource("c", "mayor"), "m", 8
            )
        )

    assert benchmark(run) == len(rows)


def test_hash_join_throughput(store, benchmark):
    predicate = Conjunction.of(
        Comparison(RefAttr("e", "department"), CompOp.EQ, SelfOid("d"))
    )
    employees = list(iterators.file_scan(store, "Employees", "e"))
    departments = list(
        iterators.file_scan(store, "extent(Department)", "d")
    )

    def run():
        return sum(
            1 for _ in iterators.hash_join(departments, employees, predicate)
        )

    assert benchmark(run) == len(employees)


def test_group_by_throughput(store, benchmark):
    from repro.algebra.operators import AggFunc, AggSpec, ProjectItem

    rows = list(iterators.file_scan(store, "Employees", "e"))
    keys = (ProjectItem("age", FieldRef("e", "age")),)
    aggs = (AggSpec("n", AggFunc.COUNT, None),)

    def run():
        return sum(1 for _ in iterators.group_by(rows, keys, aggs, None))

    assert benchmark(run) > 0


def test_sort_throughput(store, benchmark):
    rows = list(iterators.file_scan(store, "Cities", "c"))

    def run():
        return sum(1 for _ in iterators.sort_rows(rows, "c", "population", True))

    assert benchmark(run) == len(rows)


# -- execution backends ----------------------------------------------------
#
# The same scan→filter→project chain on each backend.  The end-to-end
# numbers share the store's simulated-I/O bookkeeping; the operator-path
# benches below start from pre-materialised scan output, isolating what
# the backend actually changes (row dispatch vs chunks vs fused loop).


@pytest.mark.parametrize("backend", ["interpreted", "vectorized", "compiled"])
def test_chain_query_throughput(db, benchmark, backend):
    plan = db.optimize(CHAIN_QUERY).plan
    expected = len(db.executor.execute(plan).rows)

    def run():
        return len(db.executor.execute(plan, backend=backend).rows)

    assert benchmark(run) == expected


@pytest.fixture(scope="module")
def chain_inputs(db):
    """The fused chain plus pre-materialised scan output for it."""
    chain = fuse_chain(db.optimize(CHAIN_QUERY).plan)
    assert chain is not None
    pairs = list(db.store.scan("Employees"))
    return chain, pairs


def test_chain_operator_path_interpreted(chain_inputs, benchmark):
    chain, pairs = chain_inputs
    predicate = chain.filters[0].predicate

    def run():
        rows = ({chain.scan.var: Obj(oid, data)} for oid, data in pairs)
        return sum(
            1
            for _ in iterators.project(
                iterators.filter_rows(rows, predicate),
                chain.project.items,
                chain.project.distinct,
            )
        )

    assert benchmark(run) > 0


def test_chain_operator_path_vectorized(chain_inputs, benchmark):
    chain, pairs = chain_inputs
    predicate = chain.filters[0].predicate

    def run():
        rows = ({chain.scan.var: Obj(oid, data)} for oid, data in pairs)
        chunks = (_filter_chunk(c, predicate) for c in _rechunk(rows))
        kept = _flatten(c for c in chunks if c is not None)
        return sum(
            1
            for _ in iterators.project(
                kept, chain.project.items, chain.project.distinct
            )
        )

    assert benchmark(run) > 0


def test_chain_operator_path_compiled(chain_inputs, benchmark):
    chain, pairs = chain_inputs
    fn, _, _ = CompiledBackend().pipeline_for(chain, instrumented=False)
    consts = collect_consts(chain)

    def run():
        return sum(1 for _ in fn(iter(pairs), consts, lambda: None, 1 << 62, None))

    assert benchmark(run) > 0
