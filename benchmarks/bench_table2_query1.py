"""EXP-T2 — Table 2: optimization results for Query 1 under rule ablation.

The paper simulates weaker optimizers by disabling rules:

    Row          Opt. [sec]  % of Exh.  Est. Exec. [sec]  % of Optimal
    All Rules    0.21        103        161               100
    W/o Comm.    0.12        57         681               422
    W/o Window   0.11        52         1188              737

Mapping note (see EXPERIMENTS.md): the paper's "W/o Comm." row describes a
forced "naive query execution strategy (i.e., one using pointer-chasing
algorithms)"; our rule factorization reaches that strategy by disabling
the Mat-to-Join rewrite (our literal join-commutativity toggle is reported
as an extra row — our finer-grained Mat-through-Join rules keep join plans
reachable without it).
"""

import time

import common
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

ROWS = [
    ("All rules", OptimizerConfig()),
    (
        "W/o Comm. (lit.)",
        OptimizerConfig().without(C.JOIN_COMMUTATIVITY),
    ),
    (
        "W/o Mat-to-Join",
        OptimizerConfig().without(C.MAT_TO_JOIN),
    ),
    (
        "W/o Window",
        OptimizerConfig().without(C.MAT_TO_JOIN).with_window(1),
    ),
]


def run_table2(catalog):
    results = []
    for label, config in ROWS:
        started = time.perf_counter()
        result = common.optimize(catalog, common.QUERY_1, config)
        elapsed = time.perf_counter() - started
        results.append((label, elapsed, result))
    return results


def build_report(results) -> str:
    baseline_effort = results[0][2].stats.total_effort
    optimal_cost = results[0][2].cost.total
    rows = []
    for label, elapsed, result in results:
        rows.append(
            [
                label,
                f"{elapsed:.3f}",
                f"{100 * result.stats.total_effort / baseline_effort:.0f}",
                f"{result.cost.total:.1f}",
                f"{100 * result.cost.total / optimal_cost:.0f}",
            ]
        )
    table = common.format_table(
        ["Rules", "Optim. [sec]", "% of Exh. Search", "Est. Exec. [sec]", "% of Optimal"],
        rows,
        "Table 2. Optimization Results for Query 1 "
        "(paper: 0.21/103/161/100; 0.12/57/681/422; 0.11/52/1188/737).",
    )
    return table


def test_table2_shape(full_catalog, benchmark):
    results = benchmark.pedantic(
        run_table2, args=(full_catalog,), iterations=1, rounds=1
    )
    common.register_report("Table 2 (EXP-T2)", build_report(results))
    by_label = {label: result for label, _, result in results}
    optimal = by_label["All rules"].cost.total
    no_join = by_label["W/o Mat-to-Join"].cost.total
    no_window = by_label["W/o Window"].cost.total
    # Paper shapes: pointer chasing is "more than four times as expensive";
    # removing the window costs another ~1.7x on top.
    assert no_join > 4 * optimal
    assert 1.3 < no_window / no_join < 2.5
    # Search effort shrinks as rules are disabled.
    assert (
        by_label["W/o Mat-to-Join"].stats.total_effort
        < by_label["All rules"].stats.total_effort
    )


def test_optimization_time_all_rules(full_catalog, benchmark):
    """The paper's All-Rules row optimizes in 0.21 s on a 1992 DECstation;
    it must stay well under 1 s here."""
    result = benchmark(lambda: common.optimize(full_catalog, common.QUERY_1))
    assert result.optimization_seconds < 1.0


def main() -> None:
    results = run_table2(common.paper_catalog())
    print(build_report(results))


if __name__ == "__main__":
    main()
