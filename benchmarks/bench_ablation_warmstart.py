"""EXP-ABL-WARMSTART — ablation: Lesson 7's warm-start assembly.

"A comparison of hash join using a hash table of the referenced objects
and an equivalent assembly algorithm with a large window suggests a new
'warm-start' assembly algorithm, i.e., the ability to scan a scannable
object into main memory before the normal complex object assembly
operation commences.  We plan on studying this algorithm variant."

The algorithm is implemented (disabled by default, being future work);
this bench enables it and measures where it wins: resolving many
references into a small scannable extent.
"""

import common
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

# Resolving 50k department references into the 1k-department extent: the
# regime where pre-scanning the target must win over per-reference fetches.
QUERY = (
    "SELECT e.name, e.department.name FROM Employee e IN Employees "
    "WHERE e.department.floor == 3"
)

BASE = OptimizerConfig().without(C.MAT_TO_JOIN, C.POINTER_JOIN)
WARM = BASE.with_rules(C.WARM_START_ASSEMBLY)


def run(catalog):
    without = common.optimize(catalog, QUERY, BASE)
    with_warm = common.optimize(catalog, QUERY, WARM)
    return without, with_warm


def simulated(db):
    plain = db.query(QUERY, config=BASE)
    warm = db.query(QUERY, config=WARM)
    assert len(plain.rows) == len(warm.rows)
    return (
        plain.execution.simulated_io_seconds,
        warm.execution.simulated_io_seconds,
    )


def build_report(without, with_warm, sim_plain, sim_warm) -> str:
    warm_used = any(
        node.algorithm == "WarmStartAssembly" for node in with_warm.plan.walk()
    )
    rows = [
        ["assembly only", f"{without.cost.total:.2f}", f"{sim_plain:.2f}"],
        ["warm-start enabled", f"{with_warm.cost.total:.2f}", f"{sim_warm:.2f}"],
    ]
    table = common.format_table(
        ["configuration", "est. exec [s] (full scale)", "simulated I/O [s] (10%)"],
        rows,
        "Warm-start assembly ablation (the paper's Lesson 7 future work).",
    )
    table += (
        f"\nwarm-start chosen by the optimizer: {warm_used}\n"
        "plan with warm-start enabled:\n"
        + with_warm.plan.pretty(indent=2)
    )
    return table


def test_warm_start_wins_on_small_targets(full_catalog, exec_db, benchmark):
    without, with_warm = benchmark.pedantic(
        run, args=(full_catalog,), iterations=1, rounds=1
    )
    sim_plain, sim_warm = simulated(exec_db)
    common.register_report(
        "Warm-start ablation (EXP-ABL)",
        build_report(without, with_warm, sim_plain, sim_warm),
    )
    assert with_warm.cost.total <= without.cost.total
    assert any(
        node.algorithm == "WarmStartAssembly" for node in with_warm.plan.walk()
    )
    assert sim_warm <= sim_plain * 1.05


def main() -> None:
    without, with_warm = run(common.paper_catalog())
    sim_plain, sim_warm = simulated(common.exec_database(scale=0.1))
    print(build_report(without, with_warm, sim_plain, sim_warm))


if __name__ == "__main__":
    main()
