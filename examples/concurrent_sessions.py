#!/usr/bin/env python3
"""The serving tier: concurrent sessions, DML, and snapshot isolation.

Run with:  python examples/concurrent_sessions.py [scale]

Walks the multi-user surface end to end:

1. DML through the optimizer — INSERT/UPDATE/DELETE with auto-commit
   CSNs; UPDATE target selection planned like any query;
2. explicit transactions — read-your-own-writes, invisibility to other
   sessions until commit, rollback, and the typed ``WriteConflict``
   under first-committer-wins;
3. a real TCP server — many threaded client sessions sharing one
   database, the full CLI surface over the wire, server-side cursors;
4. the conserved-transfer stress — concurrent writers move population
   between cities while readers sum the collection; every snapshot
   observes the same conserved total.
"""

import random
import sys
import threading

from repro import Database
from repro.errors import WriteConflict
from repro.server import DatabaseServer, ServerClient


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def dml_basics(db: Database) -> None:
    section("DML with auto-commit")
    result = db.query(
        "INSERT INTO Cities (name, population) VALUES ('Springfield', 30700)"
    )
    print(f"insert: {result.affected} object(s) at csn {result.csn}")
    result = db.query(
        "UPDATE c IN Cities SET c.population = 31000 "
        "WHERE c.name == 'Springfield'"
    )
    print(f"update: {result.affected} object(s) at csn {result.csn}")
    rows = db.query(
        "SELECT c.population FROM c IN Cities WHERE c.name == 'Springfield'"
    ).rows
    print(f"read back: {rows}")
    result = db.query("DELETE c IN Cities WHERE c.name == 'Springfield'")
    print(f"delete: {result.affected} object(s) at csn {result.csn}")


def transactions(db: Database) -> None:
    section("Transactions and snapshot isolation")
    txn = db.begin()
    db.query(
        "UPDATE c IN Cities SET c.population = 1 WHERE c.name == 'city0'",
        transaction=txn,
    )
    mine = db.query(
        "SELECT c.population FROM c IN Cities WHERE c.name == 'city0'",
        transaction=txn,
    ).rows[0]["c.population"]
    theirs = db.query(
        "SELECT c.population FROM c IN Cities WHERE c.name == 'city0'"
    ).rows[0]["c.population"]
    print(f"inside the txn city0 = {mine}; other sessions still see {theirs}")
    csn = txn.commit()
    print(f"committed at csn {csn}; now everyone sees the write")

    loser = db.begin()  # snapshot pinned before the winner commits
    db.query("SELECT c.name FROM c IN Cities", transaction=loser)
    winner = db.begin()
    db.query(
        "UPDATE c IN Cities SET c.population = 2 WHERE c.name == 'city0'",
        transaction=winner,
    )
    winner.commit()
    try:
        db.query(
            "UPDATE c IN Cities SET c.population = 3 WHERE c.name == 'city0'",
            transaction=loser,
        )
    except WriteConflict as exc:
        print(f"first committer wins; the loser gets: {exc}")
    print(f"loser status: {loser.status} (rolled back whole)")


def remote_sessions(db: Database) -> None:
    section("A TCP server with per-session state")
    server = DatabaseServer(db, port=0)
    host, port = server.start()
    print(f"serving on {host}:{port}")
    with ServerClient(host, port) as a, ServerClient(host, port) as b:
        print("banner:", a.hello())
        # The full CLI surface travels over the wire, per session.
        a.line(".timeout 5000")
        print("session a:", a.line(".timeout"))
        print("session b:", b.line(".timeout"), "(state is private)")
        payload = a.query(
            "SELECT c.name FROM c IN Cities WHERE c.population > 900000"
        )
        print(f"structured query: {payload['row_count']} row(s)")
        cursor = b.query_cursor("SELECT c.name FROM c IN Cities")
        batch = b.fetch(cursor, n=5)
        print(f"cursor fetch: {len(batch['rows'])} row(s), done={batch['done']}")
        print("live sessions:")
        for line in server.session_info():
            print("  " + line)
    server.stop()
    print("server drained and stopped")


def conserved_transfers(db: Database, writers: int = 8) -> None:
    section("Concurrent transfers conserve the total")
    initial = sum(
        r["c.population"]
        for r in db.query("SELECT c.population FROM c IN Cities").rows
    )
    server = DatabaseServer(db, port=0, max_wait_ms=60_000.0)
    host, port = server.start()
    conflicts = [0]
    lock = threading.Lock()

    def transfer_worker(seed: int) -> None:
        rng = random.Random(seed)
        with ServerClient(host, port, timeout=120.0) as client:
            for _ in range(3):
                source, target = rng.sample(
                    [f"city{i}" for i in range(8)], 2
                )
                amount = rng.randint(1, 50)
                client.begin()
                try:
                    a = client.query(
                        f"SELECT c.population FROM c IN Cities "
                        f"WHERE c.name == '{source}'"
                    )["rows"][0]["c.population"]
                    if a < amount:  # never drive a population negative
                        client.rollback()
                        continue
                    b = client.query(
                        f"SELECT c.population FROM c IN Cities "
                        f"WHERE c.name == '{target}'"
                    )["rows"][0]["c.population"]
                    client.query(
                        f"UPDATE c IN Cities SET c.population = {a - amount} "
                        f"WHERE c.name == '{source}'"
                    )
                    client.query(
                        f"UPDATE c IN Cities SET c.population = {b + amount} "
                        f"WHERE c.name == '{target}'"
                    )
                    client.commit()
                except WriteConflict:
                    with lock:
                        conflicts[0] += 1
                    try:
                        client.rollback()
                    except Exception:  # noqa: BLE001 — already doomed
                        pass

    threads = [
        threading.Thread(target=transfer_worker, args=(i,))
        for i in range(writers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    server.stop()
    final = sum(
        r["c.population"]
        for r in db.query("SELECT c.population FROM c IN Cities").rows
    )
    print(
        f"{writers} writers, {conflicts[0]} typed conflict(s); "
        f"total {initial} -> {final} "
        f"({'conserved' if final == initial else 'LOST UPDATES!'})"
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Building the Table 1 sample database at scale {scale} ...")
    db = Database.sample(scale=scale)
    dml_basics(db)
    transactions(db)
    remote_sessions(db)
    conserved_transfers(db)


if __name__ == "__main__":
    main()
