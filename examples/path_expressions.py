#!/usr/bin/env python3
"""Path-expression optimization: the paper's Query 1 story (Figures 5-7).

Shows the three-stage pipeline on the Dallas-employees query:

1. simplification turns the path expression into a chain of Mat operators;
2. with all rules enabled, the optimizer rewrites reference traversals into
   hybrid hash joins against the referenced extents and assembles plants
   once per department (Figure 6);
3. disabling the Mat-to-Join rule forces naive pointer chasing (Figure 7),
   which both the cost model and the disk simulator agree is far worse.

Run with:  python examples/path_expressions.py [scale]
"""

import sys

from repro import Database, OptimizerConfig
from repro.optimizer import config as C

QUERY_1 = (
    "SELECT Newobject(e.name(), e.department().name(), e.job().name()) "
    "FROM Employee e IN Employees "
    'WHERE e.department().plant().location() == "Dallas"'
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    db = Database.sample(scale=scale)

    print("Query 1 (the paper's Dallas employees query):")
    print(f"  {QUERY_1}")
    print()

    simplified = db.simplify(QUERY_1)
    print("Simplified logical algebra (Figure 5): every path link is a Mat")
    print(simplified.tree.pretty(indent=2))
    print()

    optimal = db.query(QUERY_1)
    print("Optimal plan (Figure 6): Mats became hash joins; links are")
    print("traversed AGAINST the stored pointer direction:")
    print(optimal.explain(costs=True))
    print(
        f"-> {len(optimal.rows)} rows, simulated I/O "
        f"{optimal.execution.simulated_io_seconds:.2f}s"
    )
    print()

    naive_config = OptimizerConfig().without(C.MAT_TO_JOIN)
    naive = db.query(QUERY_1, config=naive_config)
    print("Pointer-chasing plan (Figure 7, Mat-to-Join disabled):")
    print(naive.explain(costs=True))
    print(
        f"-> {len(naive.rows)} rows, simulated I/O "
        f"{naive.execution.simulated_io_seconds:.2f}s"
    )
    print()

    est_ratio = naive.optimization.cost.total / optimal.optimization.cost.total
    sim_ratio = naive.execution.simulated_io_seconds / max(
        1e-9, optimal.execution.simulated_io_seconds
    )
    print(
        f"Estimated cost ratio (naive/optimal):  {est_ratio:6.1f}x\n"
        f"Simulated  I/O  ratio (naive/optimal): {sim_ratio:6.1f}x\n"
        "\nThe paper's conclusion: \"naive traversal of such references\n"
        "('goto's on disk') may result in suboptimal performance\" — the\n"
        "set-matching algorithms of the relational world stay relevant."
    )


if __name__ == "__main__":
    main()
