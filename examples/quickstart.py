#!/usr/bin/env python3
"""Quickstart: load the paper's Table 1 world, add an index, run queries.

Run with:  python examples/quickstart.py [scale]

The optional scale factor (default 0.05) shrinks the Table 1 database
proportionally; use 1.0 for the paper's full sizes (~350k objects).
"""

import sys

from repro import Database


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Building the Table 1 sample database at scale {scale} ...")
    db = Database.sample(scale=scale)
    print(db.catalog.describe())
    print()

    # A path-expression query without any index: the optimizer picks the
    # best of scanning + assembling / pointer-joining / joining.
    query = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
    print(f"Query: {query}")
    print()
    result = db.query(query)
    print("Chosen plan (no index available):")
    print(result.explain(costs=True))
    print(
        f"-> {len(result.rows)} rows, simulated I/O "
        f"{result.execution.simulated_io_seconds:.3f}s, "
        f"{result.execution.page_reads} page reads"
    )
    print()

    # Add the paper's path index on Cities over mayor.name: the
    # collapse-to-index-scan rule now answers the query without fetching a
    # single mayor object.
    db.create_index("ix_cities_mayor_name", "Cities", ("mayor", "name"))
    result = db.query(query)
    print("Chosen plan (path index on Cities.mayor.name):")
    print(result.explain(costs=True))
    print(
        f"-> {len(result.rows)} rows, simulated I/O "
        f"{result.execution.simulated_io_seconds:.3f}s, "
        f"{result.execution.page_reads} page reads"
    )
    print()

    # Projection queries produce new objects (ZQL's Newobject).
    result = db.query(
        "SELECT c.name AS city, c.mayor.age AS mayor_age "
        'FROM City c IN Cities WHERE c.mayor.name == "Joe"'
    )
    print("Projected result rows:")
    for row in result.rows:
        print(f"  {row['city']}: mayor age {row['mayor_age']}")


if __name__ == "__main__":
    main()
