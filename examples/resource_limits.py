#!/usr/bin/env python3
"""Resource governance: deadlines, memory budgets, faults, admission.

Run with:  python examples/resource_limits.py [scale]

Walks the governor's contract end to end — the engine either returns
exactly the rows a fault-free run would return, or it raises a typed
``GovernorError``:

1. memory budgets — ORDER BY and hash joins spill to temp segments and
   still return byte-identical results, with the spill I/O visible in
   EXPLAIN ANALYZE;
2. anytime optimization — a ~1ms search deadline degrades the *plan*
   (memo-best, then greedy), never the *answer*;
3. fault injection — seeded transient read errors are retried with
   capped backoff; a persistently corrupt index triggers a
   degrade-to-scan replan;
4. hard limits — expired deadlines, cancellation, and a saturated
   admission controller all fail with typed errors.
"""

import sys

from repro import Database
from repro.errors import AdmissionRejected, QueryCancelled, QueryTimeout
from repro.governor.admission import AdmissionController
from repro.governor.context import QueryContext
from repro.governor.faults import FaultPlan
from repro.governor.spill import approx_row_bytes

ORDER_BY = "SELECT c.name, c.population FROM City c IN Cities ORDER BY c.name"
QUERY_3 = (
    'SELECT c.mayor.age, c.name FROM City c IN Cities '
    'WHERE c.mayor.name == "Joe"'
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Building the Table 1 sample database at scale {scale} ...")
    db = Database.sample(scale=scale)
    print()

    # --- 1. Memory budgets: spill, don't fail -------------------------
    reference = db.query(ORDER_BY, use_cache=False)
    footprint = sum(approx_row_bytes(row) for row in reference.rows)
    budget = max(1, footprint // 10)
    governed = db.query(ORDER_BY, use_cache=False, options={"$memory": budget})
    print(
        f"ORDER BY under a {budget}-byte budget (input ~{footprint} bytes):"
    )
    print(f"  identical rows: {governed.rows == reference.rows}")
    print(
        f"  spill I/O: {governed.execution.spill_page_writes} page writes, "
        f"{governed.execution.spill_page_reads} page reads"
    )
    report = db.explain_analyze(
        ORDER_BY, governor=QueryContext(memory_bytes=budget)
    )
    spilling = [n for n in report.root.walk() if n.spill_writes]
    print(f"  EXPLAIN ANALYZE shows spill on: {spilling[0].description}")
    print()

    # --- 2. Anytime optimization: degrade the plan, not the answer ----
    ctx = QueryContext(search_timeout_ms=0.001)
    hurried = db.query(QUERY_3, use_cache=False, governor=ctx)
    unhurried = db.query(QUERY_3, use_cache=False)
    print("Query 3 with a 1 microsecond search budget:")
    print(f"  degraded: {ctx.degraded}")
    print(
        "  same rows as the full search: "
        f"{sorted(map(repr, hurried.rows)) == sorted(map(repr, unhurried.rows))}"
    )
    print()

    # --- 3. Fault injection: retry, then replan -----------------------
    ctx = QueryContext(fault_plan=FaultPlan(seed=9, read_error_prob=0.2))
    faulted = db.query(ORDER_BY, use_cache=False, governor=ctx)
    print("20% transient read-error rate, seeded:")
    print(f"  identical rows: {faulted.rows == reference.rows}")
    print(
        f"  {ctx.faults.stats.transient_errors} transient errors retried, "
        f"{ctx.faults.stats.backoff_ms:.1f} ms simulated backoff"
    )
    db.create_index("ix_mayor", "Cities", ("mayor", "name"))
    ctx = QueryContext(fault_plan=FaultPlan(seed=1, corrupt_index_prob=1.0))
    degraded = db.query(QUERY_3, use_cache=False, governor=ctx)
    print("every index page corrupt (sticky):")
    print(f"  degraded: {ctx.degraded}")
    print(
        "  replanned without the index: "
        f"{'Index Scan' not in degraded.plan.pretty()}"
    )
    db.drop_index("ix_mayor")
    print()

    # --- 4. Hard limits fail typed ------------------------------------
    try:
        db.query(ORDER_BY, use_cache=False, options={"$timeout": 0.00001})
    except QueryTimeout as exc:
        print(f"expired deadline  -> QueryTimeout: {exc}")
    ctx = QueryContext()
    ctx.cancel()
    try:
        db.query(ORDER_BY, use_cache=False, governor=ctx)
    except QueryCancelled as exc:
        print(f"cancelled token   -> QueryCancelled: {exc}")
    db.admission = AdmissionController(1, max_wait_ms=5.0)
    with db.admission.admit():  # saturate the only slot
        try:
            db.query(QUERY_3, use_cache=False)
        except AdmissionRejected as exc:
            print(f"saturated server  -> AdmissionRejected: {exc}")
    db.admission = None


if __name__ == "__main__":
    main()
