#!/usr/bin/env python3
"""Cost-based vs greedy optimization: Query 4 (Figures 12-13, Table 3).

ObjectStore's optimizer uses "a fixed, greedy strategy designed to exploit
any available indexes".  With indexes on both Tasks.time and
extent(Employee).name, greedy uses both — but the name index matches
hundreds of Freds while the time-qualified tasks only reference a handful
of team members, so the optimal plan uses *only* the time index and
resolves member references directly.

Run with:  python examples/cost_vs_greedy.py [scale]
"""

import sys

from repro import Database

QUERY_4 = (
    "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
    'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    db = Database.sample(scale=scale)
    db.create_index("ix_tasks_time", "Tasks", ("time",))
    db.create_index("ix_employees_name", "extent(Employee)", ("name",))

    print("Query 4:", QUERY_4)
    print()

    simplified = db.simplify(QUERY_4)
    cost_based = db.query(QUERY_4)
    print("Cost-based plan (Figure 12) — uses ONLY the time index:")
    print(cost_based.explain(costs=True))
    print()

    greedy_plan = db.greedy_plan(QUERY_4)
    greedy_exec = db.execute_plan(
        greedy_plan, result_vars=simplified.result_vars
    )
    print("Greedy plan (Figure 13) — uses BOTH indexes:")
    print(greedy_plan.pretty(costs=True))
    print()

    print(f"{'':24} {'estimated':>12} {'simulated I/O':>14} {'rows':>6}")
    print(
        f"{'cost-based':24} "
        f"{cost_based.optimization.cost.total:>11.2f}s "
        f"{cost_based.execution.simulated_io_seconds:>13.2f}s "
        f"{len(cost_based.rows):>6}"
    )
    print(
        f"{'greedy (ObjectStore)':24} "
        f"{greedy_plan.total_cost.total:>11.2f}s "
        f"{greedy_exec.simulated_io_seconds:>13.2f}s "
        f"{len(greedy_exec.rows):>6}"
    )
    ratio = greedy_plan.total_cost.total / cost_based.optimization.cost.total
    print(
        f"\nGreedy is {ratio:.1f}x slower by the cost model — the paper's "
        "conclusion:\n\"the greedy algorithm is too simplistic to permit "
        "effective query\noptimization in object-oriented database systems.\""
    )


if __name__ == "__main__":
    main()
