#!/usr/bin/env python3
"""Physical properties and goal-directed search: Queries 2-3 (Figures 8-11).

The paper's subtlest point: *presence in memory* as a physical property
lets the search discover plans no purely algebraic optimizer can reach.

* Query 2 selects cities by mayor name.  With a path index, the whole
  Select-Mat-Get chain collapses into one index scan that never fetches a
  mayor (Figure 8).
* Query 3 additionally projects the mayor's age — now mayors MUST be in
  memory.  The index-scan plan doesn't deliver that property, and no
  logical transformation fixes it.  The search instead optimizes the same
  group for the weaker property and applies the assembly *enforcer* on
  top (Figures 10-11): index scan, then assemble just the two qualifying
  mayors.

Run with:  python examples/physical_properties.py [scale]
"""

import sys

from repro import Database, OptimizerConfig
from repro.optimizer import config as C

QUERY_2 = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
QUERY_3 = (
    "SELECT c.mayor.age, c.name FROM City c IN Cities "
    'WHERE c.mayor.name == "Joe"'
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    db = Database.sample(scale=scale)
    db.create_index("ix_cities_mayor_name", "Cities", ("mayor", "name"))

    print("=== Query 2:", QUERY_2)
    q2 = db.query(QUERY_2)
    print(q2.explain(costs=True))
    print(
        f"-> delivers properties {q2.plan.delivered}: cities resident, "
        "mayors never fetched"
    )
    print(
        f"-> {len(q2.rows)} rows, {q2.execution.page_reads} page reads, "
        f"simulated {q2.execution.simulated_io_seconds:.3f}s"
    )
    print()

    print("Without the collapse-to-index-scan rule (Figure 9's regime):")
    crippled = db.query(
        QUERY_2,
        config=OptimizerConfig().without(
            C.COLLAPSE_TO_INDEX_SCAN, C.MAT_TO_JOIN, C.POINTER_JOIN
        ),
    )
    print(crippled.explain(costs=True))
    print(
        f"-> every mayor assembled: {crippled.execution.page_reads} page "
        f"reads, simulated {crippled.execution.simulated_io_seconds:.1f}s "
        f"(vs {q2.execution.simulated_io_seconds:.3f}s)"
    )
    print()

    print("=== Query 3:", QUERY_3)
    print(
        "Projecting the mayor's age imposes the physical property\n"
        "'c AND c.mayor present in memory' on the subplan (Figure 11)."
    )
    q3 = db.query(QUERY_3)
    print(q3.explain(costs=True))
    print(
        "-> the assembly ENFORCER tops the index scan: only the qualifying\n"
        f"   mayors are fetched.  {q3.execution.page_reads} page reads "
        f"(Query 2 took {q2.execution.page_reads})."
    )
    for row in q3.rows:
        print(f"   {row['c.name']}: mayor age {row['c.mayor.age']}")
    print()

    print("Without enforcers, the same query falls back to assembling all:")
    no_enforcer = db.query(
        QUERY_3,
        config=OptimizerConfig().without(
            C.ASSEMBLY_ENFORCER, C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN
        ),
    )
    print(no_enforcer.explain(costs=True))
    ratio = no_enforcer.optimization.cost.total / q3.optimization.cost.total
    print(f"-> estimated {ratio:.0f}x more expensive than the enforcer plan")


if __name__ == "__main__":
    main()
