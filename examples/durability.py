#!/usr/bin/env python3
"""Durability: write-ahead logging, checkpoints, and crash recovery.

Run with:  python examples/durability.py [scale]

Walks the durability surface end to end:

1. enabling durability — a manifest, an initial checkpoint, and from
   then on one fsynced write-ahead-log record per committed transaction,
   appended *before* the commit is acknowledged;
2. clean restart — ``Database.open`` replays the log onto the newest
   checkpoint and resumes with the correct next CSN;
3. checkpoints — a consistent snapshot via temp file + atomic rename,
   after which the log is truncated;
4. a simulated crash — a seeded ``CrashPlan`` "loses power" mid-record,
   leaving a torn tail on disk; recovery ignores the torn record, so the
   unacknowledged commit vanishes and every acknowledged one survives.
"""

import os
import shutil
import sys
import tempfile

from repro import Database
from repro.governor.faults import CrashPlan, SimulatedCrash


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def listing(directory: str) -> str:
    names = sorted(os.listdir(directory))
    return ", ".join(
        f"{name} ({os.path.getsize(os.path.join(directory, name))}B)"
        for name in names
    )


def population(db: Database, name: str) -> int:
    rows = db.query(
        f"SELECT c.population FROM c IN Cities WHERE c.name == '{name}'"
    ).rows
    return rows[0]["c.population"]


def logged_commits(db: Database, directory: str) -> None:
    section("Every commit lands in the log before it is acknowledged")
    db.enable_durability(directory)
    print(f"durable directory: {listing(directory)}")
    for value in (500_010, 500_020, 500_030):
        result = db.query(
            f"UPDATE c IN Cities SET c.population = {value} "
            "WHERE c.name == 'city0'"
        )
        print(
            f"commit at csn {result.csn}: "
            f"log is now {os.path.getsize(db.durability.log_path)}B "
            f"({db.durability.wal.appended} record(s))"
        )


def clean_restart(directory: str, before: int) -> Database:
    section("Reopening recovers the newest checkpoint")
    db = Database.open(directory)
    recovery = db.durability.last_recovery
    print(
        f"recovered from checkpoint csn {recovery['checkpoint_csn']}, "
        f"replayed {recovery['replayed']} log record(s), "
        f"resumed at csn {db.store.mvcc.current_csn}"
    )
    print(
        "(a clean close checkpoints first, so there was nothing to "
        "replay; the crash below exercises replay)"
    )
    after = population(db, "city0")
    print(
        f"city0 population {before} before the restart, {after} after "
        f"({'intact' if after == before else 'LOST WRITES!'})"
    )
    return db


def checkpoints(db: Database) -> None:
    section("Checkpoints truncate the log")
    csn = db.checkpoint()
    print(
        f"checkpointed at csn {csn}; "
        f"log is back to {os.path.getsize(db.durability.log_path)}B"
    )
    print(f"directory: {listing(db.durability.directory)}")


def simulated_crash(db: Database, directory: str) -> None:
    section("A torn log tail: the unacknowledged commit vanishes")
    acknowledged = db.query(
        "UPDATE c IN Cities SET c.population = 111 WHERE c.name == 'city1'"
    )
    print(f"acknowledged: city1 = 111 at csn {acknowledged.csn}")
    # Lose power while the *next* commit's record is half-written.  The
    # plan counts durable log appends through this writer, so the very
    # next commit is ordinal ``appended + 1``.
    plan = CrashPlan(
        crash_at_commit=db.durability.wal.appended + 1,
        crash_point="mid-record",
    )
    db.durability.crash_plan = plan
    db.durability.wal.crash_plan = plan
    try:
        db.query(
            "UPDATE c IN Cities SET c.population = 999 "
            "WHERE c.name == 'city1'"
        )
    except SimulatedCrash as exc:
        print(f"power lost mid-append: {exc}")

    recovered = Database.open(directory)
    recovery = recovered.durability.last_recovery
    print(
        f"recovery replayed {recovery['replayed']} record(s) and "
        f"ignored the torn tail"
    )
    value = population(recovered, "city1")
    print(
        f"city1 = {value} "
        f"({'the acknowledged commit survived' if value == 111 else 'WRONG'}"
        f"; the torn one never happened)"
    )
    recovered.close()
    print("closed cleanly (close always leaves a fresh checkpoint)")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    directory = tempfile.mkdtemp(prefix="repro-durability-example-")
    try:
        print(f"Building the Table 1 sample database at scale {scale} ...")
        db = Database.sample(scale=scale)
        logged_commits(db, directory)
        before = population(db, "city0")
        db.close()
        db = clean_restart(directory, before)
        checkpoints(db)
        simulated_crash(db, directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
