#!/usr/bin/env python3
"""Extending the optimizer: a user-defined implementation rule.

The Open OODB optimizer's whole point is extensibility: "an extensible
object query optimizer will give us a powerful research workbench on
which to try new ideas."  This example adds the paper's own Lesson 7
suggestion twice over:

1. enables the built-in warm-start assembly rule (shipped disabled, since
   it is the paper's *future work*), and
2. registers a brand-new user-defined implementation rule — a `CountScan`
   that answers `SELECT * ... WHERE <always-false-ish>`-style probes from
   the index alone — without touching library code.

Run with:  python examples/extending_the_optimizer.py [scale]
"""

import sys

from repro import Database, Optimizer, OptimizerConfig
from repro.optimizer import config as C
from repro.optimizer.implementations import Candidate, ImplementationRule
from repro.optimizer.plans import FileScanNode
from repro.algebra.operators import Get
from repro.optimizer.cost import Cost
from repro.optimizer.physical_props import PhysProps

QUERY = (
    "SELECT e.name FROM Employee e IN Employees "
    'WHERE e.department.plant.location == "Dallas"'
)


class SampledScanRule(ImplementationRule):
    """A (deliberately toy) alternative Get implementation that scans a
    10% Bernoulli sample — the kind of experimental algorithm the
    framework lets you drop in.  It refuses to fire unless explicitly
    enabled, and is priced at a tenth of a file scan.

    NOTE: a sampling scan is *not* semantics-preserving; this rule exists
    to show the extension mechanics (matching, costing, properties), and
    the demo only prints the plan it would produce.
    """

    name = "sampled-scan"

    def candidates(self, mexpr, group, required, ctx):
        if not isinstance(mexpr.op, Get):
            return
        op = mexpr.op
        delivered = PhysProps.of(op.var)
        if not delivered.satisfies(required):
            return
        if not ctx.catalog.has_stats(op.collection):
            return
        pages = ctx.collection_pages(op.collection)
        rows = group.props.cardinality * 0.1
        full = ctx.cost_model.file_scan(pages, group.props.cardinality)
        cost = Cost(full.io_seconds * 0.1, full.cpu_seconds * 0.1)

        def build(children):
            return FileScanNode(
                op.collection,
                op.var,
                children=(),
                delivered=delivered,
                rows=rows,
                local_cost=cost,
            )

        yield Candidate((), cost, build, note="10% sample")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    db = Database.sample(scale=scale)
    simplified = db.simplify(QUERY)

    print("1) Enabling the built-in (default-off) warm-start assembly rule")
    print("   — the paper's Lesson 7 'future research' algorithm:\n")
    base = Optimizer(db.catalog).optimize(
        simplified.tree, result_vars=simplified.result_vars
    )
    warm = Optimizer(
        db.catalog, OptimizerConfig().with_rules(C.WARM_START_ASSEMBLY)
    ).optimize(simplified.tree, result_vars=simplified.result_vars)
    print("   default plan:")
    print(base.plan.pretty(indent=4, costs=True))
    print("   with warm-start assembly enabled:")
    print(warm.plan.pretty(indent=4, costs=True))
    print(
        f"\n   estimated cost: {base.cost.total:.2f}s -> {warm.cost.total:.2f}s"
    )
    print()

    print("2) Registering a user-defined implementation rule (SampledScan):")
    custom = Optimizer(
        db.catalog,
        OptimizerConfig(),
        extra_implementations=(SampledScanRule(),),
    ).optimize(simplified.tree, result_vars=simplified.result_vars)
    print(custom.plan.pretty(indent=4, costs=True))
    print(
        "\n   The new rule competed on cost with every built-in algorithm\n"
        "   inside the same memo — no framework code was modified.\n"
        "   (It can be vetoed per-query, too:)"
    )
    vetoed = Optimizer(
        db.catalog,
        OptimizerConfig().without("sampled-scan"),
        extra_implementations=(SampledScanRule(),),
    ).optimize(simplified.tree, result_vars=simplified.result_vars)
    print(f"   with the rule disabled again: cost {vetoed.cost.total:.2f}s")


if __name__ == "__main__":
    main()
