#!/usr/bin/env python3
"""Prepared queries and the plan cache: optimize once, execute many times.

Run with:  python examples/prepared_queries.py [scale]

Shows the three layers of plan reuse:

1. transparent caching — identical query shapes with different constants
   share one optimized plan automatically;
2. prepared queries — ``db.prepare`` with ``$params`` for explicit reuse
   plus parameter validation;
3. catalog versioning — index DDL invalidates affected plans, and a
   ``dynamic=True`` prepared query survives index drops by re-selecting
   among its pre-compiled scenarios instead of re-optimizing.
"""

import sys

from repro import Database
from repro.errors import ParameterBindingError


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Building the Table 1 sample database at scale {scale} ...")
    db = Database.sample(scale=scale)
    print()

    # --- 1. Transparent caching --------------------------------------
    # The second query differs only in its constant: same fingerprint,
    # so the cached plan is re-bound instead of re-optimized.
    for name in ("Joe", "Fred"):
        result = db.query(
            f'SELECT * FROM City c IN Cities WHERE c.mayor.name == "{name}"'
        )
        print(
            f"mayor == {name!r}: {len(result.rows)} rows, "
            f"cache {result.cache.outcome}"
        )
    print(f"  {db.plan_cache.stats.describe()}")
    print()

    # --- 2. Prepared queries -----------------------------------------
    prepared = db.prepare(
        "SELECT * FROM City c IN Cities WHERE c.mayor.name == $who"
    )
    print(f"prepared query parameters: {prepared.param_names}")
    for who in ("Joe", "Fred", "Harry"):
        result = prepared.execute(who=who)
        print(f"  who={who!r}: {len(result.rows)} rows, cache {result.cache.outcome}")

    # Bindings are validated before anything runs.
    try:
        prepared.execute()
    except ParameterBindingError as exc:
        print(f"  missing binding -> {exc}")
    try:
        prepared.execute(who=["Joe"])
    except ParameterBindingError as exc:
        print(f"  bad type       -> {exc}")
    print()

    # --- 3. Catalog versioning ---------------------------------------
    # Creating an index bumps the catalog version: the cached sequential
    # plan is invalidated and the next execution picks the index scan.
    db.create_index("ix_cities_mayor_name", "Cities", ("mayor", "name"))
    result = prepared.execute(who="Joe")
    print(f"after create_index: cache {result.cache.outcome}; plan:")
    print(result.plan.pretty())
    print()

    # A dynamic prepared query pre-compiles one plan per index scenario;
    # dropping the index re-selects the sequential scenario without
    # running the optimizer again.
    dynamic = db.prepare(
        "SELECT * FROM City c IN Cities WHERE c.mayor.name == $who",
        dynamic=True,
    )
    dynamic.execute(who="Joe")
    db.drop_index("ix_cities_mayor_name")
    result = dynamic.execute(who="Joe")
    print(f"after drop_index (dynamic): cache {result.cache.outcome}; plan:")
    print(result.plan.pretty())
    print()
    print(db.plan_cache.describe())


if __name__ == "__main__":
    main()
