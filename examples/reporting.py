#!/usr/bin/env python3
"""A reporting workload: aggregates, ordering, set operations, ANALYZE,
and dynamic plans — the extension features layered on the paper's core.

Run with:  python examples/reporting.py [scale]
"""

import sys

from repro import Database


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    db = Database.sample(scale=scale)

    print("== Salary report per floor (GROUP BY + aggregates + ORDER BY)")
    report = db.query(
        "SELECT d.floor, COUNT(*) AS heads, AVG(e.salary) AS avg_salary "
        "FROM Employee e IN Employees, Department d IN extent(Department) "
        "WHERE e.department == d GROUP BY d.floor ORDER BY avg_salary DESC"
    )
    print(report.explain())
    for row in report.rows[:5]:
        print(
            f"  floor {row['d.floor']}: {row['heads']} employees, "
            f"avg salary {row['avg_salary']:,.0f}"
        )
    print()

    print("== Large cities missing from the capitals list (EXCEPT)")
    names = db.query(
        "SELECT c.name AS n FROM c IN Cities WHERE c.population >= 800000 "
        "EXCEPT SELECT k.name AS n FROM k IN Capitals"
    )
    print(f"  {len(names.rows)} such cities")
    print()

    print("== ANALYZE sharpens estimates")
    query = "SELECT * FROM c IN Cities WHERE c.population >= 900000"
    naive = db.optimize(query).plan.rows
    db.analyze("Cities")
    refined = db.optimize(query).plan.rows
    actual = len(db.query(query).rows)
    print(
        f"  estimated rows: {naive:.0f} (naive 10% default) -> "
        f"{refined:.0f} (histogram); actual {actual}"
    )
    print()

    print("== Dynamic plans survive index churn without recompiling")
    db.create_index("ix_mayor", "Cities", ("mayor", "name"))
    compiled = db.dynamic_plan(
        'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
    )
    print(compiled.describe())
    with_index = db.execute_dynamic(compiled)
    db.drop_index("ix_mayor")
    without_index = db.execute_dynamic(compiled)
    assert {r["c"].oid for r in with_index.rows} == {
        r["c"].oid for r in without_index.rows
    }
    print(
        f"  same {len(with_index.rows)} rows with and without the index "
        f"(simulated I/O {with_index.simulated_io_seconds:.3f}s vs "
        f"{without_index.simulated_io_seconds:.3f}s)"
    )


if __name__ == "__main__":
    main()
