#!/usr/bin/env python3
"""Execution backends: one plan, three ways to run it.

Run with:  python examples/backends.py [scale]

The optimizer produces a physical plan; an *execution backend* decides
how that plan turns into rows.  This walkthrough shows:

1. the same query returning byte-identical rows on the interpreted
   (Volcano), vectorized (columnar chunks), and compiled (fused
   generated loop) backends;
2. what the compiled backend actually generates — and that constants
   never appear in the source, so plan-cache rebinds reuse the code;
3. the ``"auto"`` cost gate and its trace;
4. per-subtree fallback: an unfusible plan on the compiled backend
   simply runs interpreted, no flag needed;
5. relative wall time on a scan→filter→project chain.
"""

import sys
import time

from repro import Database
from repro.engine.backends import select_backend
from repro.engine.backends.compiled import fuse_chain, generate_source
from repro.obs.tracer import Tracer

CHAIN = "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 10000"
REBOUND = "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 20000"
JOINY = 'SELECT c.mayor.age, c.name FROM City c IN Cities WHERE c.mayor.name == "Joe"'


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Building the Table 1 sample database at scale {scale} ...")
    db = Database.sample(scale=scale)
    print()

    # --- 1. Same rows on every backend --------------------------------
    reference = db.query(CHAIN, use_cache=False).rows
    print(f"{CHAIN}")
    print(f"  interpreted: {len(reference)} rows")
    for backend in ("vectorized", "compiled"):
        rows = db.query(CHAIN, use_cache=False, backend=backend).rows
        print(f"  {backend}: {len(rows)} rows, identical: {rows == reference}")
    print()

    # --- 2. The generated pipeline ------------------------------------
    chain = fuse_chain(db.optimize(CHAIN).plan)
    print(f"fused chain: {chain.describe()}")
    print("generated source (constants travel via `consts`, not source):")
    for line in generate_source(chain, instrumented=False).splitlines():
        print(f"  {line}")
    rebound = fuse_chain(db.optimize(REBOUND).plan)
    same = generate_source(rebound, instrumented=False) == generate_source(
        chain, instrumented=False
    )
    print(f"rebound constant (20000) generates identical source: {same}")
    print()

    # --- 3. The auto cost gate ----------------------------------------
    tracer = Tracer()
    plan = db.optimize(CHAIN).plan
    db.executor.execute(plan, tracer=tracer, backend="auto")
    chosen = select_backend(plan)
    print(f'backend="auto" chose: {chosen}')
    for event in tracer.events:
        if event.category == "backend":
            print(f"  trace: {event.name} {dict(event.detail)}")
    print()

    # --- 4. Fallback is per-subtree -----------------------------------
    joiny_ref = db.query(JOINY, use_cache=False).rows
    joiny_compiled = db.query(JOINY, use_cache=False, backend="compiled").rows
    print("an unfusible join on the compiled backend falls back cleanly:")
    print(f"  identical rows: {joiny_compiled == joiny_ref}")
    print()

    # --- 5. Wall time on the chain ------------------------------------
    plan = db.optimize(CHAIN).plan
    print("best-of-5 wall time for the chain plan:")
    for backend in ("interpreted", "vectorized", "compiled"):
        db.executor.execute(plan, backend=backend)  # warm up
        best = min(
            _timed(lambda: db.executor.execute(plan, backend=backend))
            for _ in range(5)
        )
        print(f"  {backend:12} {best * 1000:7.2f} ms")
    print()
    print("(benchmarks/bench_operator_throughput.py isolates the operator")
    print(" path itself; bench_quick.py floor-gates the compiled speedup.)")


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


if __name__ == "__main__":
    main()
