"""Property-based tests for the cost model's invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.optimizer.cost import Cost, CostModel, yao_distinct_pages

model = CostModel()

costs = st.builds(
    Cost,
    st.floats(0, 1e6, allow_nan=False),
    st.floats(0, 1e6, allow_nan=False),
)
counts = st.floats(0, 1e7, allow_nan=False)
pages = st.integers(1, 10**6)
windows = st.integers(1, 4096)


class TestCostAdt:
    @given(costs, costs)
    def test_addition_commutative(self, a, b):
        assert (a + b).total == (b + a).total

    @given(costs, costs, costs)
    def test_addition_associative(self, a, b, c):
        left = ((a + b) + c).total
        right = (a + (b + c)).total
        assert math.isclose(left, right, rel_tol=1e-12)

    @given(costs)
    def test_zero_identity(self, a):
        assert (a + Cost.zero()).total == a.total

    @given(costs, costs)
    def test_order_total_consistent(self, a, b):
        assert (a < b) == (a.total < b.total)


class TestYao:
    @given(counts, pages)
    def test_bounds(self, fetches, p):
        value = yao_distinct_pages(fetches, p)
        assert 0.0 <= value <= min(fetches, p) + 1e-9

    @given(counts, counts, pages)
    def test_monotone_in_fetches(self, a, b, p):
        lo, hi = sorted((a, b))
        assert yao_distinct_pages(lo, p) <= yao_distinct_pages(hi, p) + 1e-9


class TestFormulas:
    @given(windows)
    def test_windowed_fetch_bounded(self, window):
        fetch = model.windowed_fetch_s(window)
        floor = (
            model.params.disk.transfer_ms + model.params.disk.rotational_ms
        ) / 1000.0
        assert floor <= fetch <= model.random_page_s + 1e-12

    @given(windows, windows)
    def test_windowed_fetch_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert model.windowed_fetch_s(hi) <= model.windowed_fetch_s(lo) + 1e-12

    @given(counts, st.one_of(st.none(), pages), windows)
    def test_assembly_nonnegative(self, refs, target_pages, window):
        cost = model.assembly(refs, target_pages, window)
        assert cost.io_seconds >= 0.0
        assert cost.cpu_seconds >= 0.0

    @given(counts, pages, windows)
    def test_known_population_never_costs_more_io(self, refs, p, window):
        """Statistics can only help: bounded assembly <= unbounded."""
        bounded = model.assembly(refs, p, window)
        unbounded = model.assembly(refs, None, window)
        assert bounded.io_seconds <= unbounded.io_seconds + 1e-9

    @given(counts, counts)
    def test_hash_join_monotone_in_rows(self, a, b):
        lo, hi = sorted((a, b))
        small = model.hybrid_hash_join(lo, lo, lo * 100)
        big = model.hybrid_hash_join(hi, hi, hi * 100)
        assert small.total <= big.total + 1e-9

    @given(pages, counts)
    def test_file_scan_components_nonnegative(self, p, rows):
        cost = model.file_scan(p, rows)
        assert cost.io_seconds >= 0 and cost.cpu_seconds >= 0

    @given(counts, pages)
    def test_pointer_join_io_bounded_by_pages(self, refs, p):
        cost = model.pointer_join(refs, p)
        sweep = (
            model.params.disk.transfer_ms + model.params.disk.rotational_ms
        ) / 1000.0
        assert cost.io_seconds <= p * sweep + 1e-9
