"""Property-based tests: anti-join vs a reference implementation, and the
EXISTS/NOT-EXISTS partition law over random data."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
)
from repro.engine.iterators import anti_join, hash_join
from repro.engine.tuples import Obj
from repro.storage.objects import Oid


@st.composite
def sides(draw):
    left = [
        {"a": Obj(Oid("A", i), {"k": draw(st.integers(0, 5)), "w": i})}
        for i in range(draw(st.integers(0, 15)))
    ]
    right = [
        {"b": Obj(Oid("B", i), {"k": draw(st.integers(0, 5)), "v": draw(st.integers(0, 9))})}
        for i in range(draw(st.integers(0, 15)))
    ]
    return left, right


KEY_PRED = Conjunction.of(
    Comparison(FieldRef("a", "k"), CompOp.EQ, FieldRef("b", "k"))
)


def reference_anti(left, right, residual_min=None):
    out = []
    for lrow in left:
        matched = False
        for rrow in right:
            if lrow["a"].field("k") != rrow["b"].field("k"):
                continue
            if residual_min is not None and rrow["b"].field("v") < residual_min:
                continue
            matched = True
            break
        if not matched:
            out.append(lrow)
    return out


class TestAntiJoin:
    @given(sides())
    @settings(max_examples=60)
    def test_matches_reference(self, data):
        left, right = data
        got = list(anti_join(left, right, KEY_PRED))
        expected = reference_anti(left, right)
        assert [r["a"].oid for r in got] == [r["a"].oid for r in expected]

    @given(sides())
    @settings(max_examples=60)
    def test_residual_honoured(self, data):
        left, right = data
        pred = Conjunction.of(
            Comparison(FieldRef("a", "k"), CompOp.EQ, FieldRef("b", "k")),
            Comparison(FieldRef("b", "v"), CompOp.GE, Const(5)),
        )
        got = list(anti_join(left, right, pred))
        expected = reference_anti(left, right, residual_min=5)
        assert [r["a"].oid for r in got] == [r["a"].oid for r in expected]

    @given(sides())
    @settings(max_examples=60)
    def test_partition_with_semi_join(self, data):
        """anti(L, R) and the L-side of join(L, R) partition L (by id)."""
        left, right = data
        anti_ids = {r["a"].oid for r in anti_join(left, right, KEY_PRED)}
        joined_ids = {
            r["a"].oid for r in hash_join(right, left, KEY_PRED)
        }
        all_ids = {r["a"].oid for r in left}
        assert anti_ids | joined_ids == all_ids
        assert not (anti_ids & joined_ids)

    @given(sides())
    @settings(max_examples=30)
    def test_no_duplicates_and_order_preserved(self, data):
        left, right = data
        got = [r["a"].field("w") for r in anti_join(left, right, KEY_PRED)]
        assert got == sorted(got)
        assert len(got) == len(set(got))

    @given(sides())
    @settings(max_examples=30)
    def test_empty_right_passes_everything(self, data):
        left, _ = data
        got = list(anti_join(left, [], KEY_PRED))
        assert [r["a"].oid for r in got] == [r["a"].oid for r in left]
