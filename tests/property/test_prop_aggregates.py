"""Property-based tests: the group-by iterator vs a reference
implementation, over random inputs."""

from collections import defaultdict

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.operators import AggFunc, AggSpec, ProjectItem
from repro.algebra.predicates import FieldRef
from repro.engine.iterators import group_by
from repro.engine.tuples import Obj
from repro.storage.objects import Oid


@st.composite
def input_rows(draw):
    n = draw(st.integers(0, 40))
    rows = []
    for i in range(n):
        data = {
            "k": draw(st.integers(0, 4)),
            "v": draw(
                st.one_of(st.none(), st.integers(-100, 100))
            ),
        }
        rows.append({"x": Obj(Oid("T", i), data)})
    return rows


KEYS = (ProjectItem("k", FieldRef("x", "k")),)
AGGS = (
    AggSpec("cnt", AggFunc.COUNT, None),
    AggSpec("cnt_v", AggFunc.COUNT, FieldRef("x", "v")),
    AggSpec("sum_v", AggFunc.SUM, FieldRef("x", "v")),
    AggSpec("avg_v", AggFunc.AVG, FieldRef("x", "v")),
    AggSpec("min_v", AggFunc.MIN, FieldRef("x", "v")),
    AggSpec("max_v", AggFunc.MAX, FieldRef("x", "v")),
)


def reference(rows):
    buckets = defaultdict(list)
    for row in rows:
        data = row["x"].data
        buckets[data["k"]].append(data["v"])
    out = {}
    for key, values in buckets.items():
        present = [v for v in values if v is not None]
        out[key] = {
            "cnt": len(values),
            "cnt_v": len(present),
            "sum_v": sum(present) if present else None,
            "avg_v": sum(present) / len(present) if present else None,
            "min_v": min(present) if present else None,
            "max_v": max(present) if present else None,
        }
    return out


class TestGroupByAgainstReference:
    @given(input_rows())
    def test_matches_reference(self, rows):
        got = {
            out["k"]: {name: out[name] for name in (
                "cnt", "cnt_v", "sum_v", "avg_v", "min_v", "max_v"
            )}
            for out in group_by(rows, KEYS, AGGS, None)
        }
        assert got == reference(rows)

    @given(input_rows())
    def test_group_count_bounded_by_distinct_keys(self, rows):
        out = list(group_by(rows, KEYS, AGGS, None))
        distinct = {r["x"].data["k"] for r in rows}
        assert len(out) == len(distinct)

    @given(input_rows(), st.booleans())
    def test_order_output_sorts_groups(self, rows, ascending):
        out = list(group_by(rows, KEYS, AGGS, ("k", ascending)))
        keys = [r["k"] for r in out]
        assert keys == sorted(keys, reverse=not ascending)

    @given(input_rows())
    def test_empty_keys_single_group(self, rows):
        out = list(group_by(rows, (), AGGS, None))
        if not rows:
            assert out == []
        else:
            assert len(out) == 1
            assert out[0]["cnt"] == len(rows)
