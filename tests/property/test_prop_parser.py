"""Property-based round-trip tests for the parser.

Random query ASTs are rendered to query text via the AST's own __str__
(which emits valid dialect syntax) and re-parsed; the round trip must
reproduce the structure.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang.ast import (
    ComparisonAst,
    ConstAst,
    PathAst,
    QueryAst,
    RangeAst,
    SelectItemAst,
)
from repro.lang.parser import parse_query

idents = st.sampled_from(["c", "e", "d", "t", "m"])
attrs = st.sampled_from(["name", "age", "population", "mayor", "country"])
collections = st.sampled_from(["Cities", "Employees", "Tasks", "Capitals"])

paths = st.builds(
    PathAst, idents, st.lists(attrs, max_size=3).map(tuple)
)

constants = st.one_of(
    st.integers(0, 10_000).map(ConstAst),
    st.sampled_from(["Joe", "Fred", "Dallas"]).map(ConstAst),
)

operators = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])

comparisons = st.builds(
    ComparisonAst, paths, operators, st.one_of(paths, constants)
)


@st.composite
def queries(draw):
    n_ranges = draw(st.integers(1, 3))
    vars_pool = ["c", "e", "d"][:n_ranges]
    ranges = tuple(
        RangeAst(var, draw(collections)) for var in vars_pool
    )
    # Conditions over declared range variables only.
    conds = tuple(
        draw(
            st.builds(
                ComparisonAst,
                st.builds(
                    PathAst,
                    st.sampled_from(vars_pool),
                    st.lists(attrs, max_size=2).map(tuple),
                ),
                operators,
                constants,
            )
        )
        for _ in range(draw(st.integers(0, 3)))
    )
    items = tuple(
        SelectItemAst(
            PathAst(draw(st.sampled_from(vars_pool)), (draw(attrs),))
        )
        for _ in range(draw(st.integers(0, 3)))
    )
    return QueryAst(items, ranges, conds, distinct=False)


class TestRoundTrip:
    @given(queries())
    def test_render_parse_roundtrip(self, query):
        text = str(query)
        reparsed = parse_query(text)
        assert isinstance(reparsed, QueryAst)
        assert len(reparsed.ranges) == len(query.ranges)
        assert [r.var for r in reparsed.ranges] == [r.var for r in query.ranges]
        assert len(reparsed.where) == len(query.where)
        assert len(reparsed.select_items) == len(query.select_items)
        for a, b in zip(reparsed.where, query.where):
            assert str(a) == str(b)

    @given(queries())
    def test_roundtrip_idempotent(self, query):
        once = parse_query(str(query))
        twice = parse_query(str(once))
        assert str(once) == str(twice)

    @given(paths)
    def test_path_roundtrip(self, path):
        query = QueryAst(
            (SelectItemAst(path),), (RangeAst(path.root, "Cities"),), ()
        )
        reparsed = parse_query(str(query))
        assert reparsed.select_items[0].path == path


@st.composite
def aggregate_queries(draw):
    from repro.lang.ast import AggregateAst, OrderByAst

    key = draw(paths)
    agg = AggregateAst(
        draw(st.sampled_from(["count", "sum", "avg", "min", "max"])),
        draw(st.one_of(st.none(), paths)),
        alias="agg0",
    )
    if agg.func != "count" and agg.path is None:
        agg = AggregateAst(agg.func, key, alias="agg0")
    order = draw(
        st.one_of(
            st.none(),
            st.just(OrderByAst(key, True)),
            st.just(OrderByAst(PathAst("agg0"), False)),
        )
    )
    having = draw(
        st.one_of(
            st.just(()),
            st.just((ComparisonAst(PathAst("agg0"), ">=", ConstAst(2)),)),
        )
    )
    return QueryAst(
        (SelectItemAst(key), agg),
        (RangeAst(key.root, "Cities"),),
        (),
        order_by=order,
        group_by=(key,),
        having=having,
    )


class TestExtendedClauseRoundTrip:
    @given(aggregate_queries())
    def test_group_having_order_roundtrip(self, query):
        reparsed = parse_query(str(query))
        assert reparsed.group_by == query.group_by
        assert len(reparsed.having) == len(query.having)
        assert (reparsed.order_by is None) == (query.order_by is None)
        if query.order_by is not None:
            assert reparsed.order_by.path == query.order_by.path
            assert reparsed.order_by.ascending == query.order_by.ascending
        assert str(parse_query(str(reparsed))) == str(reparsed)
