"""Property-based tests for the predicate language (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
    VarRef,
)
from repro.engine.tuples import eval_comparison
from repro.storage.objects import Oid
from repro.engine.tuples import Obj

VARS = ("a", "b", "c", "d")
ATTRS = ("x", "y", "z")

terms = st.one_of(
    st.integers(-5, 5).map(Const),
    st.sampled_from(VARS).flatmap(
        lambda v: st.sampled_from(ATTRS).map(lambda a: FieldRef(v, a))
    ),
    st.sampled_from(VARS).flatmap(
        lambda v: st.sampled_from(ATTRS).map(lambda a: RefAttr(v, a))
    ),
    st.sampled_from(VARS).map(SelfOid),
    st.sampled_from(VARS).map(VarRef),
)

comparisons = st.builds(
    Comparison, terms, st.sampled_from(list(CompOp)), terms
)

conjunctions = st.lists(comparisons, max_size=6).map(
    Conjunction.from_iterable
)


class TestCanonicalisation:
    @given(comparisons)
    def test_canonical_idempotent(self, comp):
        assert comp.canonical() == comp.canonical().canonical()

    @given(comparisons)
    def test_canonical_preserves_vars(self, comp):
        assert comp.canonical().vars == comp.vars
        assert comp.canonical().memory_vars == comp.memory_vars

    @given(st.lists(comparisons, max_size=6))
    def test_conjunction_order_insensitive(self, comps):
        forward = Conjunction.from_iterable(comps)
        backward = Conjunction.from_iterable(reversed(comps))
        assert forward == backward
        assert hash(forward) == hash(backward)

    @given(conjunctions)
    def test_conjoin_identity(self, conj):
        assert conj.conjoin(Conjunction.true()) == conj

    @given(conjunctions, conjunctions)
    def test_conjoin_commutative(self, a, b):
        assert a.conjoin(b) == b.conjoin(a)


class TestSplitLaws:
    @given(conjunctions, st.frozensets(st.sampled_from(VARS)))
    def test_split_partitions(self, conj, available):
        inside, outside = conj.split_by_vars(available)
        assert inside.conjoin(outside) == conj

    @given(conjunctions, st.frozensets(st.sampled_from(VARS)))
    def test_split_respects_availability(self, conj, available):
        inside, outside = conj.split_by_vars(available)
        assert inside.vars <= available
        for comp in outside.comparisons:
            assert not (comp.vars <= available)

    @given(conjunctions)
    def test_without_each_comparison(self, conj):
        for comp in conj.comparisons:
            reduced = conj.without(comp)
            assert len(reduced.comparisons) == len(conj.comparisons) - 1
            assert comp not in reduced.comparisons


@st.composite
def rows(draw):
    row = {}
    for i, var in enumerate(VARS):
        data = {attr: draw(st.integers(-5, 5)) for attr in ATTRS}
        row[var] = Obj(Oid("T", i), data)
    return row


class TestEvaluationConsistency:
    @given(comparisons.filter(lambda c: "z" not in str(c)), rows())
    def test_canonical_evaluates_identically(self, comp, row):
        assert eval_comparison(comp, row) == eval_comparison(
            comp.canonical(), row
        )

    @given(st.lists(comparisons.filter(lambda c: "z" not in str(c)), max_size=4), rows())
    def test_conjunction_is_logical_and(self, comps, row):
        from repro.engine.tuples import eval_conjunction

        conj = Conjunction.from_iterable(comps)
        assert eval_conjunction(conj, row) == all(
            eval_comparison(c, row) for c in conj.comparisons
        )
