"""Property-based tests for the storage substrate."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog, IndexDef, extent_name
from repro.catalog.schema import Schema, TypeDef, scalar
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskSimulator
from repro.storage.index import IndexRuntime
from repro.storage.objects import Oid
from repro.storage.store import ObjectStore


class TestBufferPoolModel:
    """Model-check the LRU pool against a reference OrderedDict."""

    @given(
        st.lists(st.integers(0, 30), max_size=200),
        st.integers(1, 8),
    )
    def test_matches_reference_lru(self, accesses, capacity):
        pool = BufferPool(DiskSimulator(span_pages=100), capacity=capacity)
        reference: OrderedDict[int, None] = OrderedDict()
        for page in accesses:
            expected_hit = page in reference
            cost = pool.read_page(page)
            assert (cost == 0.0) == expected_hit
            if page in reference:
                reference.move_to_end(page)
            else:
                reference[page] = None
                if len(reference) > capacity:
                    reference.popitem(last=False)
        assert set(reference) == {
            p for p in range(31) if pool.contains(p)
        }

    @given(st.lists(st.integers(0, 100), max_size=300), st.integers(1, 16))
    def test_capacity_never_exceeded(self, accesses, capacity):
        pool = BufferPool(DiskSimulator(span_pages=200), capacity=capacity)
        for page in accesses:
            pool.read_page(page)
            assert pool.resident_pages <= capacity


def _store_with(names: list[str], object_size: int) -> ObjectStore:
    schema = Schema()
    schema.add_type(
        TypeDef("T", object_size, (scalar("name", "str"),)), with_extent=True
    )
    catalog = Catalog(schema)
    store = ObjectStore(catalog)
    for name in names:
        store.insert("T", {"name": name})
    store.seal()
    return store


class TestStoreLayout:
    @given(
        st.lists(st.text(min_size=0, max_size=5), min_size=1, max_size=60),
        st.sampled_from([100, 500, 1000, 2048, 4096, 5000]),
    )
    @settings(max_examples=40)
    def test_objects_per_page_respects_capacity(self, names, object_size):
        store = _store_with(names, object_size)
        per_page = max(1, 4096 // object_size)
        from collections import Counter

        counts = Counter(
            store.page_of(Oid("T", i)) for i in range(len(names))
        )
        assert all(c <= per_page for c in counts.values())

    @given(st.lists(st.text(max_size=5), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_scan_preserves_insertion_order(self, names):
        store = _store_with(names, 500)
        scanned = [data["name"] for _, data in store.scan(extent_name("T"))]
        assert scanned == names


class TestIndexAgainstScan:
    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=80),
        st.integers(0, 10),
    )
    @settings(max_examples=40)
    def test_index_lookup_equals_scan_filter(self, values, probe):
        store = _store_with([str(v) for v in values], 500)
        index = IndexRuntime.build(
            store, IndexDef("ix", extent_name("T"), ("name",), 11)
        )
        via_index = sorted(index.lookup_eq(store, str(probe)))
        via_scan = sorted(
            oid
            for oid, data in store.scan(extent_name("T"))
            if data["name"] == str(probe)
        )
        assert via_index == via_scan

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=80))
    @settings(max_examples=40)
    def test_range_lookup_equals_scan_filter(self, values):
        store = _store_with([str(v).zfill(2) for v in values], 500)
        index = IndexRuntime.build(
            store, IndexDef("ix", extent_name("T"), ("name",), 51)
        )
        via_index = sorted(index.lookup_range(store, low="10", high="30"))
        via_scan = sorted(
            oid
            for oid, data in store.scan(extent_name("T"))
            if "10" <= data["name"] <= "30"
        )
        assert via_index == via_scan
