"""Property-based soundness tests for the whole optimizer.

The strongest property in the suite: for *random queries* over the sample
schema, the plan chosen under a *random subset of enabled rules* must
execute to exactly the same result multiset as the default plan.  This
exercises transformations, implementations, enforcers, goal-direction, and
the executor together.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Database
from repro.engine.tuples import row_key
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

_DB = None


def _db() -> Database:
    global _DB
    if _DB is None:
        _DB = Database.sample(scale=0.01, seed=99)
        _DB.create_index("pix", "Cities", ("mayor", "name"))
        _DB.create_index("tix", "Tasks", ("time",))
        _DB.create_index("eix", "extent(Employee)", ("name",))
    return _DB


# Query fragments composable into valid ZQL over the sample schema.
_CITY_CONDS = [
    'c.mayor.name == "Joe"',
    "c.population >= 500000",
    "c.population < 900000",
    'c.country.name != "country0"',
    'c.mayor.age > 40',
    "c.mayor.name == c.country.president.name",
]
_TASK_CONDS = [
    "t.time == 100",
    "t.time >= 500",
    'm.name == "Fred"',
    "m.age < 40",
]
_CITY_PROJ = ["c.name", "c.population", "c.mayor.age", "c.country.name"]
_TASK_PROJ = ["t.name", "t.time", "m.name"]

TOGGLABLE = [
    C.COLLAPSE_TO_INDEX_SCAN,
    C.MAT_TO_JOIN,
    C.JOIN_TO_MAT,
    C.JOIN_COMMUTATIVITY,
    C.JOIN_ASSOCIATIVITY,
    C.MAT_COMMUTATIVITY,
    C.MAT_PAST_JOIN,
    C.SELECT_PAST_MAT,
    C.SELECT_PAST_JOIN,
    C.SELECT_PAST_UNNEST,
    C.POINTER_JOIN,
    C.ASSEMBLY_ENFORCER,
    C.NESTED_LOOPS,
    C.MERGE_JOIN,
]


_CITY_ORDERS = [
    "", " ORDER BY c.population", " ORDER BY c.name DESC", " ORDER BY c",
    " ORDER BY c.mayor.age",
]

_TASK_QUANTIFIERS = [
    "",
    ' AND EXISTS (SELECT m2 FROM Employee m2 IN t.team_members WHERE m2.age < 35)',
    ' AND NOT EXISTS (SELECT m2 FROM Employee m2 IN t.team_members WHERE m2.name == "Fred")',
]

_AGG_QUERIES = [
    "SELECT c.country.name, COUNT(*) AS n FROM City c IN Cities "
    "GROUP BY c.country.name",
    "SELECT c.country.name, COUNT(*) AS n, AVG(c.population) AS p "
    "FROM City c IN Cities WHERE c.population >= 100000 "
    "GROUP BY c.country.name HAVING n >= 2 ORDER BY n DESC",
    "SELECT COUNT(*) AS n, MIN(c.population) AS lo, MAX(c.population) AS hi "
    "FROM City c IN Cities WHERE c.mayor.age > 30",
    "SELECT d.floor, COUNT(e.salary) AS n FROM Employee e IN Employees, "
    "Department d IN extent(Department) WHERE e.department == d "
    "GROUP BY d.floor ORDER BY d.floor",
]


@st.composite
def city_queries(draw):
    conds = draw(st.lists(st.sampled_from(_CITY_CONDS), max_size=3))
    projs = draw(st.lists(st.sampled_from(_CITY_PROJ), max_size=3))
    select = ", ".join(dict.fromkeys(projs)) if projs else "*"
    sql = f"SELECT {select} FROM City c IN Cities"
    if conds:
        sql += " WHERE " + " AND ".join(dict.fromkeys(conds))
    sql += draw(st.sampled_from(_CITY_ORDERS))
    return sql


@st.composite
def task_queries(draw):
    conds = draw(st.lists(st.sampled_from(_TASK_CONDS), min_size=1, max_size=3))
    projs = draw(st.lists(st.sampled_from(_TASK_PROJ), max_size=2))
    select = ", ".join(dict.fromkeys(projs)) if projs else "*"
    sql = f"SELECT {select} FROM Task t IN Tasks, Employee m IN t.team_members"
    sql += " WHERE " + " AND ".join(dict.fromkeys(conds))
    sql += draw(st.sampled_from(_TASK_QUANTIFIERS))
    return sql


configs = st.frozensets(st.sampled_from(TOGGLABLE), max_size=6).map(
    lambda disabled: OptimizerConfig().without(*disabled)
)


def _run(sql, config):
    result = _db().query(sql, config=config)
    return Counter(row_key(r) for r in result.rows)


class TestPlanSoundness:
    @given(city_queries(), configs)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_city_queries_config_independent(self, sql, config):
        assert _run(sql, config) == _run(sql, OptimizerConfig())

    @given(task_queries(), configs)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_task_queries_config_independent(self, sql, config):
        assert _run(sql, config) == _run(sql, OptimizerConfig())

    @given(st.sampled_from(_AGG_QUERIES), configs)
    @settings(
        max_examples=16,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_aggregate_queries_config_independent(self, sql, config):
        from repro.errors import NoPlanFoundError

        try:
            got = _run(sql, config)
        except NoPlanFoundError:
            # A legitimate outcome: e.g. disabling select-past-join AND
            # nested-loops AND mat-to-join leaves a cartesian join with no
            # implementer.  Weaker rule sets may lose plans, never results.
            return
        assert got == _run(sql, OptimizerConfig())

    @given(city_queries())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_plan_cost_nonnegative_and_finite(self, sql):
        result = _db().optimize(sql)
        assert 0 <= result.cost.total < float("inf")
        for node in result.plan.walk():
            assert node.local_cost.total >= 0
            assert node.rows >= 0

    @given(city_queries())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_delivered_properties_honest(self, sql):
        """A node never claims in-memory variables that neither a child
        delivered nor the node itself materializes, and the root satisfies
        what optimization demanded."""
        from repro.optimizer.plans import (
            AssemblyNode,
            FileScanNode,
            IndexScanNode,
            PointerJoinNode,
            WarmStartAssemblyNode,
        )

        result = _db().optimize(sql)
        for node in result.plan.walk():
            inherited: frozenset[str] = frozenset()
            for child in node.children:
                inherited |= child.delivered.in_memory
            if isinstance(node, (FileScanNode, IndexScanNode)):
                inherited |= {node.var}
            if isinstance(
                node, (AssemblyNode, PointerJoinNode, WarmStartAssemblyNode)
            ):
                inherited |= {node.out}
            assert node.delivered.in_memory <= inherited
        assert result.plan.delivered.satisfies(result.required)
