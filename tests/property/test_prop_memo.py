"""Property-based memo invariants.

The deepest one: *estimate consistency*.  A group's cardinality is shared
by every expression in it, so re-deriving the cardinality from any member
m-expr and its child groups must reproduce the group's value — for every
group, after full exploration, on randomly composed queries.  This is the
invariant that makes Mat <-> Join rewriting safe inside one group.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.sample_db import (
    build_catalog,
    index_cities_mayor_name,
    index_employees_name,
    index_tasks_time,
)
from repro.lang.parser import parse_query
from repro.optimizer import OptimizerConfig
from repro.optimizer.context import OptimizeContext
from repro.optimizer.cost import CostModel
from repro.optimizer.logical_props import build_query_vars
from repro.optimizer.memo import Memo
from repro.optimizer.search import SearchEngine
from repro.optimizer.selectivity import SelectivityModel
from repro.simplify.simplifier import simplify_full

_CATALOG = None


def catalog():
    global _CATALOG
    if _CATALOG is None:
        _CATALOG = build_catalog()
        _CATALOG.add_index(index_cities_mayor_name())
        _CATALOG.add_index(index_tasks_time())
        _CATALOG.add_index(index_employees_name())
    return _CATALOG


_CITY_CONDS = [
    'c.mayor.name == "Joe"',
    "c.population >= 500000",
    'c.country.name != "x"',
    "c.mayor.name == c.country.president.name",
]
_EMP_CONDS = [
    'e.name == "Fred"',
    "e.age >= 40",
    "e.department == d",
    "d.floor == 3",
]


@st.composite
def queries(draw):
    shape = draw(st.sampled_from(["city", "join", "task"]))
    if shape == "city":
        conds = draw(st.lists(st.sampled_from(_CITY_CONDS), min_size=1, max_size=3))
        return "SELECT c.name FROM City c IN Cities WHERE " + " AND ".join(
            dict.fromkeys(conds)
        )
    if shape == "join":
        conds = draw(st.lists(st.sampled_from(_EMP_CONDS), min_size=1, max_size=3))
        return (
            "SELECT e.name FROM Employee e IN Employees, "
            "Department d IN extent(Department) WHERE "
            + " AND ".join(dict.fromkeys(conds))
        )
    return (
        "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
        'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
    )


def _explored_memo(sql: str):
    cat = catalog()
    sq = simplify_full(parse_query(sql), cat)
    qvars = build_query_vars(sq.tree, cat)
    selectivity = SelectivityModel(cat, qvars)
    memo = Memo(cat, selectivity)
    root = memo.insert_expression(sq.tree)
    ctx = OptimizeContext(
        memo=memo,
        catalog=cat,
        cost_model=CostModel(),
        selectivity=selectivity,
        query_vars=qvars,
        config=OptimizerConfig(),
    )
    engine = SearchEngine(ctx)
    engine.explore()
    return memo


class TestMemoInvariants:
    @given(queries())
    @settings(max_examples=25, deadline=None)
    def test_group_cardinality_consistent_across_members(self, sql):
        memo = _explored_memo(sql)
        for group in memo.groups():
            for mexpr in group.mexprs:
                child_props = tuple(
                    memo.group(c).props for c in mexpr.children
                )
                recomputed = memo._derive_cardinality(mexpr.op, child_props)
                assert recomputed == pytest.approx(
                    group.props.cardinality, rel=1e-6
                ), f"{mexpr.op.describe()} in group {group.gid}"

    @given(queries())
    @settings(max_examples=25, deadline=None)
    def test_group_scopes_consistent_across_members(self, sql):
        from repro.algebra.scopes import derive_scope

        memo = _explored_memo(sql)
        for group in memo.groups():
            for mexpr in group.mexprs:
                child_scopes = tuple(
                    memo.group(c).props.scope for c in mexpr.children
                )
                recomputed = derive_scope(mexpr.op, child_scopes, memo.catalog)
                assert recomputed == group.props.scope

    @given(queries())
    @settings(max_examples=15, deadline=None)
    def test_no_duplicate_mexprs_after_dedup(self, sql):
        memo = _explored_memo(sql)
        for group in memo.groups():
            keys = [
                (m.op.signature(), tuple(memo.find(c) for c in m.children))
                for m in group.mexprs
            ]
            assert len(keys) == len(set(keys))
