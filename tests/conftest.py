"""Shared fixtures: scaled-down Table 1 databases.

The small scale (2%) keeps data generation under ~50 ms per database while
preserving the catalog's selectivity structure, so plan choices at test
scale mirror full scale for most queries.  Plan-*shape* assertions that
depend on full-scale cardinalities build their own full-size *catalog*
(statistics only, no data).
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.catalog.sample_db import (
    build_catalog,
    index_cities_mayor_name,
    index_employees_name,
    index_tasks_time,
)

SCALE = 0.02


@pytest.fixture(scope="session")
def plain_db() -> Database:
    """Populated sample database without any indexes (session-shared;
    treat as read-only — tests that mutate the catalog build their own)."""
    return Database.sample(scale=SCALE)


@pytest.fixture(scope="session")
def indexed_db() -> Database:
    """Populated sample database with the paper's three indexes."""
    db = Database.sample(scale=SCALE)
    db.create_index("ix_cities_mayor_name", "Cities", ("mayor", "name"))
    db.create_index("ix_tasks_time", "Tasks", ("time",))
    db.create_index("ix_employees_name", "extent(Employee)", ("name",))
    return db


@pytest.fixture()
def fresh_db() -> Database:
    """A private database instance safe to mutate."""
    return Database.sample(scale=SCALE)


@pytest.fixture(scope="session")
def paper_catalog():
    """Full-scale catalog (statistics only) with the paper's indexes."""
    catalog = build_catalog()
    catalog.add_index(index_cities_mayor_name())
    catalog.add_index(index_tasks_time())
    catalog.add_index(index_employees_name())
    return catalog


@pytest.fixture(scope="session")
def paper_catalog_plain():
    """Full-scale catalog (statistics only) without indexes."""
    return build_catalog()


QUERY_1 = (
    "SELECT Newobject(e.name(), e.department().name(), e.job().name()) "
    "FROM Employee e IN Employees "
    'WHERE e.department().plant().location() == "Dallas"'
)
QUERY_2 = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
QUERY_3 = (
    "SELECT c.mayor.age, c.name FROM City c IN Cities "
    'WHERE c.mayor.name == "Joe"'
)
QUERY_4 = (
    "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
    'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
)


@pytest.fixture(scope="session")
def paper_queries() -> dict[str, str]:
    return {"Q1": QUERY_1, "Q2": QUERY_2, "Q3": QUERY_3, "Q4": QUERY_4}
