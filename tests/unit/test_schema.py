"""Unit tests for the schema layer (types, attributes, collections)."""

import pytest

from repro.catalog.schema import (
    AttrKind,
    AttributeDef,
    CollectionKind,
    Schema,
    TypeDef,
    extent_name,
    ref,
    scalar,
    set_ref,
)
from repro.errors import SchemaError


def _person() -> TypeDef:
    return TypeDef("Person", 100, (scalar("name", "str"), scalar("age")))


class TestAttributeDef:
    def test_scalar_constructor(self):
        attr = scalar("age", "int")
        assert attr.kind is AttrKind.SCALAR
        assert attr.target_type is None
        assert not attr.is_reference
        assert not attr.is_set

    def test_ref_constructor(self):
        attr = ref("mayor", "Person")
        assert attr.kind is AttrKind.REF
        assert attr.target_type == "Person"
        assert attr.is_reference

    def test_set_ref_constructor(self):
        attr = set_ref("team", "Employee")
        assert attr.is_set
        assert attr.target_type == "Employee"

    def test_scalar_with_target_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("x", AttrKind.SCALAR, target_type="Person")

    def test_ref_without_target_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("x", AttrKind.REF)


class TestTypeDef:
    def test_attribute_lookup(self):
        person = _person()
        assert person.attribute("name").scalar_type == "str"

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            _person().attribute("salary")

    def test_has_attribute(self):
        assert _person().has_attribute("age")
        assert not _person().has_attribute("salary")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            TypeDef("T", 10, (scalar("a"), scalar("a")))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(SchemaError):
            TypeDef("T", 0, ())

    def test_reference_attributes_filter(self):
        t = TypeDef(
            "City", 200, (scalar("name"), ref("mayor", "Person"))
        )
        names = [a.name for a in t.reference_attributes]
        assert names == ["mayor"]


class TestSchema:
    def test_add_type_with_extent(self):
        schema = Schema()
        schema.add_type(_person(), with_extent=True)
        extent = schema.collection(extent_name("Person"))
        assert extent.kind is CollectionKind.EXTENT
        assert extent.is_extent
        assert extent.element_type == "Person"

    def test_named_set(self):
        schema = Schema()
        schema.add_type(_person())
        coll = schema.add_named_set("People", "Person")
        assert coll.kind is CollectionKind.NAMED_SET
        assert not coll.is_extent

    def test_duplicate_type_rejected(self):
        schema = Schema()
        schema.add_type(_person())
        with pytest.raises(SchemaError):
            schema.add_type(_person())

    def test_duplicate_collection_rejected(self):
        schema = Schema()
        schema.add_type(_person())
        schema.add_named_set("People", "Person")
        with pytest.raises(SchemaError):
            schema.add_named_set("People", "Person")

    def test_extent_of_missing(self):
        schema = Schema()
        schema.add_type(_person())
        assert schema.extent_of("Person") is None

    def test_set_over_unknown_type_rejected(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.add_named_set("People", "Person")

    def test_validate_dangling_reference(self):
        schema = Schema()
        schema.add_type(
            TypeDef("City", 200, (ref("mayor", "Person"),))
        )
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_ok(self):
        schema = Schema()
        schema.add_type(_person())
        schema.add_type(TypeDef("City", 200, (ref("mayor", "Person"),)))
        schema.validate()  # no raise
