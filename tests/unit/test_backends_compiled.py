"""Unit tests for the compiled backend: fusion detection and codegen.

The pipeline source is golden-tested for a representative
scan→filter→project plan; constants never appear in generated code
(they travel via the ``consts`` tuple, so rebound cached plans share
one compiled pipeline), and the fingerprint cache is structural.
"""

import pytest

from repro.api import Database
from repro.engine.backends.compiled import (
    CompiledBackend,
    chain_fingerprint,
    collect_consts,
    fuse_chain,
    generate_source,
)
from tests.conftest import SCALE

Q_FUSIBLE = "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 10000"
Q_REBOUND = "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 20000"
Q_JOINY = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'


@pytest.fixture(scope="module")
def db() -> Database:
    return Database.sample(scale=SCALE)


class TestFuseChain:
    def test_detects_scan_filter_project(self, db):
        chain = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        assert chain is not None
        assert chain.describe() == "FileScan→filter→project"
        assert collect_consts(chain) == (10000,)

    def test_bare_scan_is_not_fused(self, db):
        plan = db.optimize("SELECT * FROM Capital c IN Capitals").plan
        # Whatever the exact shape, a chain with nothing to fuse must
        # not claim the plan.
        chain = fuse_chain(plan)
        if chain is not None:
            assert chain.filters or chain.project is not None

    def test_multi_variable_plan_is_not_fused(self, db):
        plan = db.optimize(Q_JOINY).plan
        assert fuse_chain(plan) is None

    def test_golden_source(self, db):
        chain = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        assert generate_source(chain, instrumented=False) == (
            "def _fused_pipeline(scan, consts, check, interval, counters):\n"
            "    countdown = interval\n"
            "    for _oid, _data in scan:\n"
            "        countdown -= 1\n"
            "        if countdown <= 0:\n"
            "            check()\n"
            "            countdown = interval\n"
            "        _l0 = consts[0]\n"
            "        _r0 = _data.get('salary')\n"
            "        if _l0 is None or _r0 is None:\n"
            "            continue\n"
            "        try:\n"
            "            if not (_l0 < _r0):\n"
            "                continue\n"
            "        except TypeError:\n"
            "            continue\n"
            "        _row = {'e.name': _data.get('name')}\n"
            "        yield _row\n"
        )

    def test_instrumented_variant_counts_inner_nodes(self, db):
        chain = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        source = generate_source(chain, instrumented=True)
        assert "counters[0] += 1" in source  # the scan
        assert "counters[1] += 1" in source  # the filter
        assert "counters[2]" not in source  # chain root: executor-counted


class TestFingerprintCache:
    def test_rebound_constants_share_a_fingerprint(self, db):
        a = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        b = fuse_chain(db.optimize(Q_REBOUND).plan)
        assert chain_fingerprint(a, False) == chain_fingerprint(b, False)
        assert collect_consts(a) != collect_consts(b)

    def test_instrumented_flag_separates_fingerprints(self, db):
        chain = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        assert chain_fingerprint(chain, False) != chain_fingerprint(chain, True)

    def test_pipeline_cache_reuse(self, db):
        backend = CompiledBackend()
        chain = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        fn1, _, hit1 = backend.pipeline_for(chain, instrumented=False)
        fn2, _, hit2 = backend.pipeline_for(chain, instrumented=False)
        assert not hit1 and hit2
        assert fn1 is fn2

    def test_constants_never_appear_in_source(self, db):
        chain = fuse_chain(db.optimize(Q_FUSIBLE).plan)
        source = generate_source(chain, instrumented=False)
        assert "10000" not in source
        assert "consts[0]" in source


class TestCompiledExecution:
    def test_fused_rows_match_interpreted(self, db):
        interpreted = db.query(Q_FUSIBLE, use_cache=False).rows
        compiled = db.query(Q_FUSIBLE, use_cache=False, backend="compiled").rows
        assert compiled == interpreted

    def test_unfusible_plan_falls_back(self, db):
        interpreted = db.query(Q_JOINY, use_cache=False).rows
        compiled = db.query(Q_JOINY, use_cache=False, backend="compiled").rows
        assert compiled == interpreted

    def test_null_and_type_mismatch_semantics(self):
        # A generated world with nullable attribute values: the fused
        # predicate must drop them exactly as the interpreter does.
        from repro.fuzz.worldgen import build_database, random_world
        import random

        world = random_world(random.Random("backend-null-semantics"))
        fuzz_db = build_database(world)
        coll, type_name = world.collections()[0]
        attr = world.type_spec(type_name).attrs[0].name
        text = f"SELECT x.{attr} FROM x IN {coll} WHERE x.{attr} >= 0"
        want = fuzz_db.query(text, use_cache=False).rows
        got = fuzz_db.query(text, use_cache=False, backend="compiled").rows
        assert got == want
