"""Unit tests for runtime tuples and term evaluation."""

import pytest

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    ObjectTerm,
    RefAttr,
    SelfOid,
    VarRef,
)
from repro.engine.tuples import (
    Obj,
    eval_comparison,
    eval_conjunction,
    eval_term,
    row_key,
    value_key,
)
from repro.errors import ExecutionError
from repro.storage.objects import Oid


@pytest.fixture()
def row():
    mayor = Oid("Person", 7)
    return {
        "c": Obj(Oid("City", 1), {"name": "springfield", "mayor": mayor}),
        "m": mayor,  # a REF binding
        "ghost": Obj(Oid("City", 2), None),  # in scope, not resident
    }


class TestEvalTerm:
    def test_const(self, row):
        assert eval_term(Const(5), row) == 5

    def test_field_ref(self, row):
        assert eval_term(FieldRef("c", "name"), row) == "springfield"

    def test_ref_attr(self, row):
        assert eval_term(RefAttr("c", "mayor"), row) == Oid("Person", 7)

    def test_self_oid(self, row):
        assert eval_term(SelfOid("c"), row) == Oid("City", 1)

    def test_var_ref(self, row):
        assert eval_term(VarRef("m"), row) == Oid("Person", 7)

    def test_object_term(self, row):
        obj = eval_term(ObjectTerm("c"), row)
        assert obj.oid == Oid("City", 1)

    def test_field_of_nonresident_raises(self, row):
        with pytest.raises(ExecutionError):
            eval_term(FieldRef("ghost", "name"), row)

    def test_object_term_nonresident_raises(self, row):
        with pytest.raises(ExecutionError):
            eval_term(ObjectTerm("ghost"), row)

    def test_missing_var_raises(self, row):
        with pytest.raises(ExecutionError):
            eval_term(FieldRef("zzz", "name"), row)

    def test_missing_attribute_is_none(self, row):
        assert eval_term(FieldRef("c", "salary"), row) is None


class TestEvalPredicate:
    def test_comparison_true_false(self, row):
        eq = Comparison(FieldRef("c", "name"), CompOp.EQ, Const("springfield"))
        ne = Comparison(FieldRef("c", "name"), CompOp.EQ, Const("shelbyville"))
        assert eval_comparison(eq, row)
        assert not eval_comparison(ne, row)

    def test_oid_equality(self, row):
        comp = Comparison(RefAttr("c", "mayor"), CompOp.EQ, VarRef("m"))
        assert eval_comparison(comp, row)

    def test_null_comparisons_false(self, row):
        comp = Comparison(FieldRef("c", "salary"), CompOp.EQ, Const(None))
        assert not eval_comparison(comp, row)

    def test_type_mismatch_false_not_raise(self, row):
        comp = Comparison(FieldRef("c", "name"), CompOp.LT, Const(5))
        assert not eval_comparison(comp, row)

    def test_conjunction_all_semantics(self, row):
        good = Comparison(FieldRef("c", "name"), CompOp.EQ, Const("springfield"))
        bad = Comparison(FieldRef("c", "name"), CompOp.EQ, Const("x"))
        assert eval_conjunction(Conjunction.of(good), row)
        assert not eval_conjunction(Conjunction.of(good, bad), row)
        assert eval_conjunction(Conjunction.true(), row)


class TestKeys:
    def test_value_key_obj_by_identity(self, row):
        assert value_key(row["c"]) == Oid("City", 1)
        assert value_key(42) == 42

    def test_row_key_order_insensitive(self, row):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert row_key(a) == row_key(b)

    def test_row_key_distinguishes_objects(self):
        a = {"c": Obj(Oid("City", 1), {})}
        b = {"c": Obj(Oid("City", 2), {})}
        assert row_key(a) != row_key(b)
