"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskSimulator


@pytest.fixture()
def pool() -> BufferPool:
    return BufferPool(DiskSimulator(span_pages=10_000), capacity=4)


class TestBufferPool:
    def test_miss_then_hit(self, pool):
        first = pool.read_page(7)
        second = pool.read_page(7)
        assert first > 0.0
        assert second == 0.0
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction(self, pool):
        for page in (1, 2, 3, 4):
            pool.read_page(page)
        pool.read_page(5)  # evicts 1
        assert not pool.contains(1)
        assert pool.contains(5)
        assert pool.read_page(1) > 0.0  # page 1 faults again

    def test_touch_refreshes_recency(self, pool):
        for page in (1, 2, 3, 4):
            pool.read_page(page)
        pool.read_page(1)  # 1 becomes most recent
        pool.read_page(5)  # evicts 2, not 1
        assert pool.contains(1)
        assert not pool.contains(2)

    def test_capacity_bound(self, pool):
        for page in range(100):
            pool.read_page(page)
        assert pool.resident_pages == 4

    def test_flush(self, pool):
        pool.read_page(1)
        pool.flush()
        assert pool.resident_pages == 0
        assert pool.read_page(1) > 0.0

    def test_hit_rate(self, pool):
        pool.read_page(1)
        pool.read_page(1)
        pool.read_page(1)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self, pool):
        assert pool.stats.hit_rate == 0.0

    def test_small_working_set_reads_disk_once(self, pool):
        for _ in range(10):
            for page in (1, 2, 3):
                pool.read_page(page)
        assert pool.disk.stats.page_reads == 3
