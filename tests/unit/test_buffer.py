"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskSimulator


@pytest.fixture()
def pool() -> BufferPool:
    return BufferPool(DiskSimulator(span_pages=10_000), capacity=4)


class TestBufferPool:
    def test_miss_then_hit(self, pool):
        first = pool.read_page(7)
        second = pool.read_page(7)
        assert first > 0.0
        assert second == 0.0
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction(self, pool):
        for page in (1, 2, 3, 4):
            pool.read_page(page)
        pool.read_page(5)  # evicts 1
        assert not pool.contains(1)
        assert pool.contains(5)
        assert pool.read_page(1) > 0.0  # page 1 faults again

    def test_touch_refreshes_recency(self, pool):
        for page in (1, 2, 3, 4):
            pool.read_page(page)
        pool.read_page(1)  # 1 becomes most recent
        pool.read_page(5)  # evicts 2, not 1
        assert pool.contains(1)
        assert not pool.contains(2)

    def test_capacity_bound(self, pool):
        for page in range(100):
            pool.read_page(page)
        assert pool.resident_pages == 4

    def test_flush(self, pool):
        pool.read_page(1)
        pool.flush()
        assert pool.resident_pages == 0
        assert pool.read_page(1) > 0.0

    def test_hit_rate(self, pool):
        pool.read_page(1)
        pool.read_page(1)
        pool.read_page(1)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self, pool):
        assert pool.stats.hit_rate == 0.0

    def test_small_working_set_reads_disk_once(self, pool):
        for _ in range(10):
            for page in (1, 2, 3):
                pool.read_page(page)
        assert pool.disk.stats.page_reads == 3


class TestEvictionBoundaries:
    """LRU behaviour at exactly capacity and exactly capacity + 1 pages."""

    def test_exactly_capacity_no_eviction(self, pool):
        for page in (1, 2, 3, 4):  # capacity is 4
            pool.read_page(page)
        assert pool.resident_pages == 4
        for page in (1, 2, 3, 4):
            assert pool.contains(page)
        # Touching every page again is all hits — nothing was evicted.
        for page in (1, 2, 3, 4):
            assert pool.read_page(page) == 0.0
        assert pool.stats.misses == 4
        assert pool.stats.hits == 4

    def test_capacity_plus_one_evicts_exactly_lru(self, pool):
        for page in (1, 2, 3, 4, 5):  # one over capacity
            pool.read_page(page)
        assert pool.resident_pages == 4
        assert not pool.contains(1)  # only the LRU page went
        for page in (2, 3, 4, 5):
            assert pool.contains(page)

    def test_capacity_one_pool(self):
        from repro.storage.disk import DiskSimulator

        pool = BufferPool(DiskSimulator(span_pages=100), capacity=1)
        pool.read_page(1)
        assert pool.contains(1)
        pool.read_page(2)
        assert not pool.contains(1)
        assert pool.contains(2)
        assert pool.resident_pages == 1


class TestFlushStats:
    """flush() must not silently carry warm counters into 'cold' runs."""

    def test_flush_keeps_stats_by_default(self, pool):
        pool.read_page(1)
        pool.read_page(1)
        pool.flush()
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_flush_reset_stats(self, pool):
        pool.read_page(1)
        pool.read_page(1)
        pool.flush(reset_stats=True)
        assert pool.stats.hits == 0
        assert pool.stats.misses == 0
        assert pool.resident_pages == 0
        # The next run really is cold: first access faults again.
        assert pool.read_page(1) > 0.0
        assert pool.stats.misses == 1


class TestIOScopes:
    """Per-operator attribution via the I/O scope stack."""

    def test_top_scope_gets_attribution(self, pool):
        from repro.obs.runtime import OperatorIOStats

        outer, inner = OperatorIOStats(), OperatorIOStats()
        pool.push_io_scope(outer)
        pool.read_page(1)  # miss -> outer
        pool.push_io_scope(inner)
        pool.read_page(1)  # hit -> inner (exclusive: not outer)
        pool.read_page(2)  # miss -> inner
        pool.pop_io_scope()
        pool.read_page(2)  # hit -> outer
        pool.pop_io_scope()
        pool.read_page(3)  # no scope: global stats only
        assert (outer.hits, outer.misses) == (1, 1)
        assert (inner.hits, inner.misses) == (1, 1)
        assert inner.page_reads == 1
        assert (pool.stats.hits, pool.stats.misses) == (2, 3)


class TestThreadLocalFaults:
    def test_fault_injector_does_not_cross_threads(self):
        """One session's injector must never fire in another's reads."""
        import threading

        from repro.errors import StorageFaultError
        from repro.governor.faults import FaultInjector, FaultPlan

        pool = BufferPool(DiskSimulator(span_pages=100), capacity=4)
        pool.faults = FaultInjector(
            FaultPlan(seed=0, read_error_prob=1.0, max_retries=1)
        )
        observed: dict = {}

        def other_session() -> None:
            observed["faults"] = pool.faults
            observed["cost"] = pool.read_page(5)  # must not fault

        worker = threading.Thread(target=other_session)
        worker.start()
        worker.join()
        assert observed["faults"] is None
        assert observed["cost"] > 0.0
        # The installing thread itself does see the injector fire.
        with pytest.raises(StorageFaultError):
            pool.read_page(6)
        pool.faults = None
        assert pool.read_page(7) > 0.0
