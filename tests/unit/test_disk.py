"""Unit tests for the disk simulator's timing model."""

import pytest

from repro.storage.disk import DiskParameters, DiskSimulator


class TestDiskParameters:
    def test_sequential_is_transfer_only(self):
        params = DiskParameters()
        assert params.sequential_read_ms == params.transfer_ms

    def test_random_default_uses_expected_seek(self):
        params = DiskParameters()
        expected = (
            params.transfer_ms
            + params.rotational_ms
            + params.full_stroke_seek_ms * 2 / 3
        )
        assert params.random_read_ms(10_000) == pytest.approx(expected)

    def test_seek_grows_with_distance(self):
        params = DiskParameters()
        near = params.random_read_ms(10_000, distance=10)
        far = params.random_read_ms(10_000, distance=9_000)
        assert near < far

    def test_distance_capped_at_span(self):
        params = DiskParameters()
        at_span = params.random_read_ms(100, distance=100)
        beyond = params.random_read_ms(100, distance=1_000)
        assert at_span == pytest.approx(beyond)


class TestDiskSimulator:
    def test_sequential_run_is_cheap(self):
        disk = DiskSimulator(span_pages=1000)
        total = sum(disk.read(p) for p in range(100))
        # First read seeks (page 0 is adjacent to initial head), rest stream.
        assert total == pytest.approx(100 * disk.params.transfer_ms)
        assert disk.stats.sequential_reads == 100

    def test_random_jumps_cost_more(self):
        disk = DiskSimulator(span_pages=1000)
        seq = DiskSimulator(span_pages=1000)
        random_cost = sum(disk.read(p) for p in (900, 5, 700, 13, 450))
        seq_cost = sum(seq.read(p) for p in range(5))
        assert random_cost > 3 * seq_cost
        assert disk.stats.random_reads == 5

    def test_rereading_same_page_is_sequential(self):
        disk = DiskSimulator(span_pages=1000)
        disk.read(500)
        cost = disk.read(500)
        assert cost == disk.params.sequential_read_ms

    def test_elapsed_accumulates(self):
        disk = DiskSimulator(span_pages=1000)
        for page in (1, 999, 2):
            disk.read(page)
        assert disk.elapsed_seconds == pytest.approx(
            disk.stats.elapsed_ms / 1000.0
        )
        assert disk.stats.page_reads == 3

    def test_reset_stats(self):
        disk = DiskSimulator(span_pages=100)
        disk.read(50)
        disk.reset_stats()
        assert disk.stats.page_reads == 0
        assert disk.elapsed_seconds == 0.0

    def test_extend_span_monotonic(self):
        disk = DiskSimulator()
        disk.extend_span(500)
        disk.extend_span(100)
        assert disk.span_pages == 500

    def test_elevator_order_beats_random_order(self):
        """Sorted (elevator) access over the same pages costs less —
        the physical basis of the assembly window discount."""
        pages = [7, 900, 340, 12, 660, 88, 501, 230]
        elevator = DiskSimulator(span_pages=1000)
        for page in sorted(pages):
            elevator.read(page)
        random_order = DiskSimulator(span_pages=1000)
        for page in pages:
            random_order.read(page)
        assert elevator.stats.elapsed_ms < random_order.stats.elapsed_ms
