"""Unit tests for the cost model."""

import pytest

from repro.optimizer.cost import Cost, CostModel, yao_distinct_pages


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestCostAdt:
    def test_total_and_add(self):
        c = Cost(1.0, 0.5) + Cost(2.0, 0.25)
        assert c.io_seconds == 3.0
        assert c.cpu_seconds == 0.75
        assert c.total == 3.75

    def test_ordering_by_total(self):
        assert Cost(1.0, 0.0) < Cost(0.0, 2.0)
        assert Cost(2.0, 0.0) >= Cost(1.0, 1.0)

    def test_zero_and_infinite(self):
        assert Cost.zero().total == 0.0
        assert Cost.zero() < Cost.infinite()


class TestYao:
    def test_few_fetches_few_pages(self):
        assert yao_distinct_pages(1, 1000) == pytest.approx(1.0, rel=0.01)

    def test_many_fetches_saturate(self):
        assert yao_distinct_pages(1_000_000, 100) == pytest.approx(100.0)

    def test_monotone_in_fetches(self):
        assert yao_distinct_pages(10, 100) < yao_distinct_pages(100, 100)

    def test_bounded_by_pages(self):
        assert yao_distinct_pages(500, 100) <= 100.0

    def test_degenerate(self):
        assert yao_distinct_pages(0, 100) == 0.0
        assert yao_distinct_pages(10, 0) == 0.0


class TestPrimitives:
    def test_sequential_cheaper_than_random(self, model):
        assert model.seq_page_s < model.random_page_s

    def test_window_discount(self, model):
        """The assembly window discounts the seek; window 1 = fully random."""
        assert model.windowed_fetch_s(1) == pytest.approx(model.random_page_s)
        assert model.windowed_fetch_s(8) < model.windowed_fetch_s(1)
        assert model.windowed_fetch_s(64) < model.windowed_fetch_s(8)
        # Transfer + rotation are irreducible.
        floor = (
            model.params.disk.transfer_ms + model.params.disk.rotational_ms
        ) / 1000.0
        assert model.windowed_fetch_s(10**9) >= floor


class TestAssembly:
    def test_unknown_population_charges_per_ref(self, model):
        """The paper's Plant case: no extent stats -> one fault per ref."""
        cost = model.assembly(50_000, target_pages=None)
        per_fetch = model.windowed_fetch_s(model.params.assembly_window)
        assert cost.io_seconds == pytest.approx(50_000 * per_fetch)

    def test_small_target_bounded_by_pages(self, model):
        """The paper's Department case: 50k refs into a 98-page extent."""
        cost = model.assembly(50_000, target_pages=98)
        per_fetch = model.windowed_fetch_s(model.params.assembly_window)
        assert cost.io_seconds <= 98 * per_fetch * 1.01

    def test_target_larger_than_pool_pessimistic(self, model):
        pages = model.params.buffer_pages * 2
        cost = model.assembly(10_000, target_pages=pages)
        per_fetch = model.windowed_fetch_s(model.params.assembly_window)
        assert cost.io_seconds == pytest.approx(10_000 * per_fetch)

    def test_window_one_is_naive(self, model):
        naive = model.assembly(1_000, None, window=1)
        windowed = model.assembly(1_000, None, window=8)
        assert naive.io_seconds > windowed.io_seconds
        # sqrt(8) discount applies only to the seek component.
        assert naive.io_seconds < 3 * windowed.io_seconds


class TestJoins:
    def test_in_memory_build_no_io(self, model):
        cost = model.hybrid_hash_join(1_000, 10_000, build_bytes=1_000 * 100)
        assert cost.io_seconds == 0.0
        assert cost.cpu_seconds > 0.0

    def test_spill_when_build_exceeds_workmem(self, model):
        big = model.params.work_mem_bytes * 4
        cost = model.hybrid_hash_join(1_000_000, 10, build_bytes=big)
        assert cost.io_seconds > 0.0

    def test_build_costs_more_than_probe(self, model):
        """Asymmetry drives the optimizer to build on the small side."""
        small_build = model.hybrid_hash_join(100, 10_000, 100 * 50)
        big_build = model.hybrid_hash_join(10_000, 100, 10_000 * 50)
        assert small_build.total < big_build.total

    def test_nested_loops_quadratic(self, model):
        small = model.nested_loops_join(10, 10)
        big = model.nested_loops_join(100, 100)
        assert big.cpu_seconds == pytest.approx(small.cpu_seconds * 100)


class TestOtherOperators:
    def test_file_scan_components(self, model):
        cost = model.file_scan(100, 2_000)
        assert cost.io_seconds == pytest.approx(100 * model.seq_page_s)
        assert cost.cpu_seconds > 0.0

    def test_index_scan_scales_with_matches(self, model):
        few = model.index_scan(2, 1, 1, 500)
        many = model.index_scan(400, 1, 2, 500)
        assert few.total < many.total

    def test_pointer_join_cheaper_io_than_naive_assembly(self, model):
        pj = model.pointer_join(10_000, 2_500)
        naive = model.assembly(10_000, None, window=1)
        assert pj.io_seconds < naive.io_seconds

    def test_warm_start_is_scan_priced(self, model):
        cost = model.warm_start_assembly(50_000, 98)
        assert cost.io_seconds == pytest.approx(98 * model.seq_page_s)

    def test_filter_project_unnest_cpu_only(self, model):
        for cost in (
            model.filter(1000, 2),
            model.project(1000),
            model.unnest(1000),
            model.hash_set_op(10, 10),
        ):
            assert cost.io_seconds == 0.0
            assert cost.cpu_seconds > 0.0

    def test_distinct_projection_costs_more(self, model):
        assert model.project(1000, distinct=True).total > model.project(1000).total
