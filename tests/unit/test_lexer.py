"""Unit tests for the ZQL lexer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.lang.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop END


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens[:-1])

    def test_identifiers(self):
        assert kinds("Employee e_1 _x") == [TokenKind.IDENT] * 3

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == 42
        assert tokens[1].value == 3.5

    def test_string_double_and_single_quotes(self):
        assert tokenize('"Dallas"')[0].value == "Dallas"
        assert tokenize("'Dallas'")[0].value == "Dallas"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize('"Dallas')

    def test_two_char_symbols(self):
        assert texts("== != <= >= &&") == ["==", "!=", "<=", ">=", "&&"]

    def test_one_char_symbols(self):
        assert texts("( ) , . < > *") == ["(", ")", ",", ".", "<", ">", "*"]

    def test_path_not_float(self):
        # "e.age" must lex as IDENT DOT IDENT, not a number.
        assert kinds("e.age") == [TokenKind.IDENT, TokenKind.SYMBOL, TokenKind.IDENT]

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a @ b")

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.END

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_true_false_null_keywords(self):
        tokens = tokenize("true FALSE null")
        assert [t.text for t in tokens[:-1]] == ["true", "false", "null"]
