"""Unit tests for the cardinality-feedback loop's building blocks.

Covers the three layers independently of ``Database``: subplan
fingerprints (stable identity across equivalent plan shapes), the
feedback store (material-change versioning, freshness, partial
observations), and the execution-side cardinality monitor (counting,
the adaptive-replan trigger, flush-on-cancel).  The end-to-end loop is
exercised in ``tests/integration/test_feedback_loop.py``.
"""

import pytest

from repro.api import Database
from repro.feedback import (
    REPLAN_MIN_ROWS,
    AdaptiveReplanSignal,
    CardinalityMonitor,
    FeedbackStore,
    fingerprint_plan,
)
from repro.obs.explain import NodeReport
from repro.optimizer.config import (
    COLLAPSE_TO_INDEX_SCAN,
    HYBRID_HASH_JOIN,
    MERGE_JOIN,
)

SCALE = 0.02

QUERY_JOIN = (
    "SELECT c.name FROM City c IN Cities, Capital k IN Capitals "
    "WHERE c.population == k.population"
)


@pytest.fixture(scope="module")
def db() -> Database:
    return Database.sample(scale=SCALE)


def _root_key(db: Database, text: str, config=None):
    plan = db.optimize(text, config=config).plan
    key, _ = fingerprint_plan(plan)[id(plan)]
    return key


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_every_sample_plan_node_has_a_key(self, db):
        plan = db.optimize(
            'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
        ).plan
        infos = fingerprint_plan(plan)
        for node in plan.walk():
            key, collections = infos[id(node)]
            assert key is not None
            assert collections  # every sample subplan reads a collection

    def test_index_scan_and_filtered_scan_share_key(self, db):
        """The same logical selection, with and without index collapse."""
        text = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
        assert _root_key(db, text) == _root_key(
            db, text, config=db.config.without(COLLAPSE_TO_INDEX_SCAN)
        )

    def test_join_strategy_does_not_change_key(self, db):
        """Hash join and nested loops fingerprint the same subplan."""
        assert _root_key(db, QUERY_JOIN) == _root_key(
            db,
            QUERY_JOIN,
            config=db.config.without(HYBRID_HASH_JOIN, MERGE_JOIN),
        )

    def test_different_predicates_get_different_keys(self, db):
        a = _root_key(
            db, 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
        )
        b = _root_key(
            db, 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Ann"'
        )
        assert a != b

    def test_keys_are_hashable(self, db):
        key = _root_key(db, QUERY_JOIN)
        assert len({key, key}) == 1


# ----------------------------------------------------------------------
# Feedback store
# ----------------------------------------------------------------------


class TestFeedbackStore:
    def test_observe_then_lookup(self, db):
        store = FeedbackStore()
        store.observe(("k",), 42.0, {"Cities"}, db.catalog)
        assert store.observed(("k",), db.catalog) == 42.0
        assert store.stats.hits == 1

    def test_unknown_key_misses(self, db):
        store = FeedbackStore()
        assert store.observed(("nope",), db.catalog) is None

    def test_version_bumps_only_on_material_change(self, db):
        store = FeedbackStore()
        store.observe(("k",), 100.0, {"Cities"}, db.catalog)
        v = store.version
        # Re-observing roughly the same number is not news.
        store.observe(("k",), 120.0, {"Cities"}, db.catalog)
        assert store.version == v
        # Moving past MATERIAL_RATIO (1.5x) is.
        store.observe(("k",), 400.0, {"Cities"}, db.catalog)
        assert store.version > v

    def test_partial_observation_never_lowers_a_complete_one(self, db):
        store = FeedbackStore()
        store.observe(("k",), 500.0, {"Cities"}, db.catalog)
        store.observe(("k",), 80.0, {"Cities"}, db.catalog, complete=False)
        assert store.observed(("k",), db.catalog) == 500.0

    def test_partial_observation_can_raise_the_bound(self, db):
        store = FeedbackStore()
        store.observe(("k",), 10.0, {"Cities"}, db.catalog, complete=False)
        store.observe(("k",), 90.0, {"Cities"}, db.catalog, complete=False)
        assert store.observed(("k",), db.catalog) == 90.0

    def test_complete_estimate_replaces_fallback_both_ways(self, db):
        store = FeedbackStore()
        store.observe(("k",), 30.0, {"Cities"}, db.catalog)
        assert store.estimate(("k",), db.catalog, 500.0) == (30.0, True)
        assert store.estimate(("k",), db.catalog, 2.0) == (30.0, True)

    def test_partial_estimate_is_only_a_lower_bound(self, db):
        """A cancelled stream's count may raise an estimate, never lower
        it — the 60 rows seen of a cancelled cartesian product must not
        cost the product as a 60-row input."""
        store = FeedbackStore()
        store.observe(("k",), 60.0, {"Cities"}, db.catalog, complete=False)
        assert store.estimate(("k",), db.catalog, 12000.0) == (12000.0, False)
        assert store.estimate(("k",), db.catalog, 2.5) == (60.0, True)

    def test_estimate_without_observation_keeps_fallback(self, db):
        store = FeedbackStore()
        assert store.estimate(("k",), db.catalog, 7.0) == (7.0, False)

    def test_clear_drops_and_bumps_version(self, db):
        store = FeedbackStore()
        store.observe(("k",), 7.0, {"Cities"}, db.catalog)
        v = store.version
        store.clear()
        assert len(store) == 0
        assert store.version > v
        assert store.observed(("k",), db.catalog) is None


# ----------------------------------------------------------------------
# Cardinality monitor
# ----------------------------------------------------------------------


class TestCardinalityMonitor:
    def _plan(self, db):
        return db.optimize("SELECT * FROM City c IN Cities").plan

    def test_counts_consumed_rows(self, db):
        plan = self._plan(db)
        monitor = CardinalityMonitor(plan)
        rows = list(monitor.wrap(plan, iter(range(10))))
        assert rows == list(range(10))
        observations = list(monitor.observations())
        assert any(rows == 10 and complete
                   for _, _, rows, complete in observations)

    def test_partial_consumption_is_flushed_incomplete(self, db):
        plan = self._plan(db)
        monitor = CardinalityMonitor(plan)
        stream = iter(monitor.wrap(plan, iter(range(100))))
        for _ in range(5):
            next(stream)
        stream.close()  # GeneratorExit must still flush the count
        (_, _, rows, complete), *_ = list(monitor.observations())
        assert rows == 5
        assert not complete

    def test_replan_triggers_past_threshold(self, db):
        plan = self._plan(db)
        monitor = CardinalityMonitor(plan, replan_ratio=8.0)
        threshold = max(plan.rows * 8.0, REPLAN_MIN_ROWS)
        produced = []
        with pytest.raises(AdaptiveReplanSignal) as info:
            for row in monitor.wrap(plan, iter(range(10**6))):
                produced.append(row)
        assert len(produced) < 10**6
        assert info.value.observed >= threshold
        assert monitor.replanned
        # The cancelled stream still reports its rows as a lower bound.
        (_, _, rows, complete), *_ = list(monitor.observations())
        assert rows >= threshold
        assert not complete

    def test_no_ratio_means_no_trigger(self, db):
        plan = self._plan(db)
        monitor = CardinalityMonitor(plan, replan_ratio=None)
        assert len(list(monitor.wrap(plan, iter(range(5000))))) == 5000
        assert not monitor.replanned

    def test_unknown_node_passthrough(self, db):
        plan = self._plan(db)
        monitor = CardinalityMonitor(plan)
        other = self._plan(db)  # distinct object: not in this monitor
        stream = iter(range(3))
        assert monitor.wrap(other, stream) is stream


# ----------------------------------------------------------------------
# cardinality_error corners (the unclamp fix)
# ----------------------------------------------------------------------


def _report(est: float, act: int) -> NodeReport:
    return NodeReport(
        algorithm="Filter",
        description="t",
        est_rows=est,
        est_cost_total=0.0,
        actual_rows=act,
        next_seconds=0.0,
        buffer_hits=0,
        buffer_misses=0,
    )


class TestCardinalityError:
    def test_exact_match_is_one(self):
        assert _report(10.0, 10).cardinality_error == 1.0

    def test_both_zero_is_perfect(self):
        assert _report(0.0, 0).cardinality_error == 1.0

    def test_zero_estimate_nonzero_actual_is_infinite(self):
        assert _report(0.0, 500).cardinality_error == float("inf")

    def test_nonzero_estimate_zero_actual_is_infinite(self):
        assert _report(500.0, 0).cardinality_error == float("inf")

    def test_symmetric_ratio(self):
        assert _report(10.0, 1000).cardinality_error == pytest.approx(100.0)
        assert _report(1000.0, 10).cardinality_error == pytest.approx(100.0)

    def test_sub_one_estimates_are_not_floored(self):
        # Pre-fix, est 0.5 was clamped to 1 and "0.5 estimated, 50 seen"
        # reported a 50x error instead of 100x.
        assert _report(0.5, 50).cardinality_error == pytest.approx(100.0)
