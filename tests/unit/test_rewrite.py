"""Unit tests for the pre-memo rewrite stage, rule by rule.

Each rule gets a fires case and a does-not-fire case: the rewrite stage
must be aggressive exactly within its preconditions and inert outside
them (soundness across real data is the fuzzer's job; plan-quality
invariants on the paper queries live in the integration suite).
"""

from repro.algebra.operators import (
    Get,
    Join,
    Mat,
    MatChain,
    Project,
    ProjectItem,
    RefSource,
    Select,
)
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.catalog.sample_db import build_catalog
from repro.optimizer import config as C
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.rewrite import (
    _canonicalize_joins,
    _collection_joins,
    _drop_redundant_mats,
    _fuse_mat_chains,
    _merge_selects,
    _pushdown,
    rewrite_tree,
)
from repro.optimizer.logical_props import build_query_vars
from repro.optimizer.selectivity import SelectivityModel


CATALOG = build_catalog()


def _eq(left, right):
    return Conjunction.of(Comparison(left, CompOp.EQ, right))


def _sel_model(tree):
    return SelectivityModel(CATALOG, build_query_vars(tree, CATALOG))


EMPLOYEES = Get("Employees", "e")
DEPARTMENTS = Get("extent(Department)", "d")
TASKS = Get("Tasks", "t")
E_NAME = _eq(FieldRef("e", "name"), Const("x"))
T_TIME = _eq(FieldRef("t", "time"), Const(100))
E_DEPT_IS_D = _eq(RefAttr("e", "department"), SelfOid("d"))


class TestSelectMerge:
    def test_fires_on_stacked_selects(self):
        events = []
        tree = _merge_selects(
            Select(Select(EMPLOYEES, E_NAME), T_TIME), events
        )
        assert isinstance(tree, Select)
        assert isinstance(tree.child, Get)
        assert len(tree.predicate.comparisons) == 2
        assert len(events) == 1

    def test_single_select_untouched(self):
        events = []
        original = Select(EMPLOYEES, E_NAME)
        assert _merge_selects(original, events) == original
        assert events == []


class TestPushdown:
    def test_single_side_conjunct_sinks_below_join(self):
        events = []
        tree = _pushdown(
            Select(Join(EMPLOYEES, TASKS, Conjunction.true()), E_NAME),
            events,
        )
        assert isinstance(tree, Join)
        assert isinstance(tree.left, Select)
        assert tree.left.predicate == E_NAME
        assert len(events) == 1

    def test_spanning_conjunct_stays_above_join(self):
        spanning = _eq(FieldRef("e", "name"), FieldRef("t", "time"))
        events = []
        tree = _pushdown(
            Select(Join(EMPLOYEES, TASKS, Conjunction.true()), spanning),
            events,
        )
        # Merging it into the join predicate would trip the
        # associativity rule's cartesian guard, so it must stay in a
        # Select above the join.
        assert isinstance(tree, Select)
        assert tree.predicate == spanning
        assert isinstance(tree.child, Join)
        assert tree.child.predicate.is_true
        assert events == []


class TestCollectionJoin:
    def _join_tree(self):
        return Select(
            Join(EMPLOYEES, DEPARTMENTS, Conjunction.true()), E_DEPT_IS_D
        )

    def test_fires_on_unreferenced_extent(self):
        events = []
        tree = _collection_joins(self._join_tree(), CATALOG, frozenset(), events)
        assert isinstance(tree, Mat)
        assert tree.source == RefSource("e", "department")
        assert tree.out == "d"
        assert isinstance(tree.child, Get)
        assert len(events) == 1

    def test_blocked_when_var_is_external(self):
        events = []
        tree = _collection_joins(
            self._join_tree(), CATALOG, frozenset({"d"}), events
        )
        assert isinstance(tree, Select)
        assert events == []

    def test_blocked_when_var_used_elsewhere(self):
        d_name = _eq(FieldRef("d", "name"), Const("Sales"))
        tree = Select(
            Join(EMPLOYEES, DEPARTMENTS, Conjunction.true()),
            E_DEPT_IS_D.conjoin(d_name),
        )
        events = []
        converted = _collection_joins(tree, CATALOG, frozenset(), events)
        assert isinstance(converted, Select)
        assert events == []

    def test_blocked_on_named_set(self):
        # Tasks is a NAMED_SET, not an extent: Mat-to-Join could not
        # restore the join, so the conversion must not fire.
        tree = Select(
            Join(EMPLOYEES, TASKS, Conjunction.true()),
            _eq(RefAttr("e", "department"), SelfOid("t")),
        )
        events = []
        converted = _collection_joins(tree, CATALOG, frozenset(), events)
        assert isinstance(converted, Select)
        assert events == []


class TestRedundantMat:
    def test_fires_on_duplicate_unused_source(self):
        inner = Mat(EMPLOYEES, RefSource("e", "department"), "d")
        duplicate = Mat(inner, RefSource("e", "department"), "d2")
        events = []
        tree = _drop_redundant_mats(duplicate, frozenset({"d"}), events)
        assert tree == inner
        assert len(events) == 1

    def test_blocked_when_out_is_used(self):
        inner = Mat(EMPLOYEES, RefSource("e", "department"), "d")
        duplicate = Mat(inner, RefSource("e", "department"), "d2")
        used = Select(duplicate, _eq(FieldRef("d2", "name"), Const("Sales")))
        events = []
        tree = _drop_redundant_mats(used, frozenset({"d"}), events)
        assert tree == used
        assert events == []

    def test_blocked_on_first_occurrence(self):
        only = Mat(EMPLOYEES, RefSource("e", "department"), "d")
        events = []
        assert _drop_redundant_mats(only, frozenset(), events) == only
        assert events == []


class TestJoinCanon:
    def test_reorders_cartesian_inputs_by_estimate(self):
        tree = Join(EMPLOYEES, DEPARTMENTS, Conjunction.true())
        events = []
        canon = _canonicalize_joins(tree, _sel_model(tree), CATALOG, events)
        # extent(Department) (1 000 rows) before Employees (50 000).
        assert canon.left == DEPARTMENTS
        assert canon.right == EMPLOYEES
        assert len(events) == 1

    def test_predicated_join_untouched(self):
        tree = Join(EMPLOYEES, DEPARTMENTS, E_DEPT_IS_D)
        events = []
        canon = _canonicalize_joins(tree, _sel_model(tree), CATALOG, events)
        assert canon == tree
        assert events == []


class TestMatChainFusion:
    def _chain(self):
        dept = Mat(EMPLOYEES, RefSource("e", "department"), "d")
        return Mat(dept, RefSource("e", "job"), "j")

    def test_fuses_unreferenced_run(self):
        events = []
        tree = _fuse_mat_chains(self._chain(), frozenset(), events)
        assert isinstance(tree, MatChain)
        assert [link.out for link in tree.links] == ["d", "j"]
        assert isinstance(tree.child, Get)
        assert len(events) == 1

    def test_external_out_stays_unfused(self):
        events = []
        tree = _fuse_mat_chains(self._chain(), frozenset({"j"}), events)
        # j is needed above: its Mat survives; the d link still fuses
        # into a (single-link) chain below it.
        assert isinstance(tree, Mat)
        assert tree.out == "j"
        assert isinstance(tree.child, MatChain)
        assert [link.out for link in tree.child.links] == ["d"]

    def test_referenced_out_stays_unfused(self):
        used = Select(self._chain(), _eq(FieldRef("d", "name"), Const("S")))
        events = []
        tree = _fuse_mat_chains(used, frozenset(), events)
        # d is read by the Select: its Mat survives unfused below the
        # (single-link) chain that absorbs the unreferenced j.
        chain = tree.child
        assert isinstance(chain, MatChain)
        assert [link.out for link in chain.links] == ["j"]
        assert isinstance(chain.child, Mat)
        assert chain.child.out == "d"

    def test_chain_source_links_fuse_together(self):
        # d feeds the second hop (d.company): consumed inside the run,
        # so both links still fuse into one chain.
        dept = Mat(EMPLOYEES, RefSource("e", "department"), "d")
        hop = Mat(dept, RefSource("d", None), "d2")
        events = []
        tree = _fuse_mat_chains(hop, frozenset(), events)
        assert isinstance(tree, MatChain)
        assert [link.out for link in tree.links] == ["d", "d2"]


class TestRewriteTreeStage:
    def test_disabled_stage_returns_original(self):
        tree = Select(Select(EMPLOYEES, E_NAME), T_TIME)
        config = OptimizerConfig().without(
            C.REWRITE_SELECT_MERGE,
            C.REWRITE_PUSHDOWN,
            C.REWRITE_COLLECTION_JOIN,
            C.REWRITE_REDUNDANT_MAT,
            C.REWRITE_JOIN_CANON,
            C.REWRITE_MAT_CHAIN,
        )
        out, events = rewrite_tree(tree, CATALOG, config)
        assert out == tree
        assert events == ()

    def test_end_to_end_collection_join_fusion(self):
        jobs = Get("extent(Job)", "j")
        tree = Project(
            Select(
                Join(
                    Join(EMPLOYEES, DEPARTMENTS, Conjunction.true()),
                    jobs,
                    Conjunction.true(),
                ),
                E_DEPT_IS_D.conjoin(_eq(RefAttr("e", "job"), SelfOid("j"))),
            ),
            (ProjectItem("name", FieldRef("e", "name")),),
        )
        out, events = rewrite_tree(
            tree, CATALOG, OptimizerConfig(), result_vars=()
        )
        assert isinstance(out, Project)
        chain = out.children[0]
        assert isinstance(chain, MatChain)
        assert sorted(link.out for link in chain.links) == ["d", "j"]
        assert isinstance(chain.child, Get)
        rules = {event.rule for event in events}
        assert C.REWRITE_COLLECTION_JOIN in rules
        assert C.REWRITE_MAT_CHAIN in rules

    def test_externals_protect_result_vars(self):
        tree = Select(
            Join(EMPLOYEES, DEPARTMENTS, Conjunction.true()), E_DEPT_IS_D
        )
        out, _ = rewrite_tree(
            tree, CATALOG, OptimizerConfig(), result_vars=("e", "d")
        )
        # d is user-visible: the collection join must keep the Get.
        assert "extent(Department)" in repr(out)
