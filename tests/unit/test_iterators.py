"""Unit tests for the physical operator iterators, run on a tiny store."""

import pytest

from repro.algebra.operators import ProjectItem, RefSource, SetOpKind
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    SelfOid,
)
from repro.catalog.catalog import Catalog, IndexDef, extent_name
from repro.catalog.schema import Schema, TypeDef, ref, scalar, set_ref
from repro.engine import iterators as it
from repro.storage.index import IndexRuntime
from repro.storage.store import ObjectStore


def _catalog() -> Catalog:
    schema = Schema()
    schema.add_type(
        TypeDef("Person", 400, (scalar("name", "str"), scalar("age"))),
        with_extent=True,
    )
    schema.add_type(
        TypeDef(
            "City",
            400,
            (
                scalar("name", "str"),
                ref("mayor", "Person"),
                set_ref("sisters", "City"),
            ),
        ),
        with_extent=True,
    )
    return Catalog(schema)


@pytest.fixture()
def store() -> ObjectStore:
    store = ObjectStore(_catalog())
    people = [
        store.insert("Person", {"name": n, "age": a})
        for n, a in [("joe", 50), ("ann", 40), ("joe", 30), ("bob", 60)]
    ]
    cities = []
    for i in range(4):
        cities.append(
            store.insert(
                "City",
                {"name": f"c{i}", "mayor": people[i], "sisters": ()},
            )
        )
    # Wire sister cities: c0 <-> c1, c2 -> (c0, c1, c3)
    store.peek(cities[0])["sisters"] = (cities[1],)
    store.peek(cities[1])["sisters"] = (cities[0],)
    store.peek(cities[2])["sisters"] = (cities[0], cities[1], cities[3])
    store.seal()
    return store


PERSONS = extent_name("Person")
CITIES = extent_name("City")


class TestScans:
    def test_file_scan_yields_resident_objects(self, store):
        rows = list(it.file_scan(store, PERSONS, "p"))
        assert len(rows) == 4
        assert all(rows[i]["p"].resident for i in range(4))

    def test_index_scan_eq(self, store):
        index = IndexRuntime.build(
            store, IndexDef("ix", PERSONS, ("name",), 3)
        )
        rows = list(
            it.index_scan(
                store,
                index,
                "p",
                Comparison(FieldRef("p", "name"), CompOp.EQ, Const("joe")),
                Conjunction.true(),
            )
        )
        assert {r["p"].field("age") for r in rows} == {50, 30}

    def test_index_scan_residual(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", PERSONS, ("name",), 3))
        rows = list(
            it.index_scan(
                store,
                index,
                "p",
                Comparison(FieldRef("p", "name"), CompOp.EQ, Const("joe")),
                Conjunction.of(
                    Comparison(FieldRef("p", "age"), CompOp.GT, Const(40))
                ),
            )
        )
        assert [r["p"].field("age") for r in rows] == [50]

    def test_index_scan_range(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", PERSONS, ("age",), 4))
        rows = list(
            it.index_scan(
                store,
                index,
                "p",
                Comparison(FieldRef("p", "age"), CompOp.GE, Const(50)),
                Conjunction.true(),
            )
        )
        assert {r["p"].field("age") for r in rows} == {50, 60}

    def test_index_scan_flipped_constant(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", PERSONS, ("age",), 4))
        rows = list(
            it.index_scan(
                store,
                index,
                "p",
                Comparison(Const(50), CompOp.LE, FieldRef("p", "age")),
                Conjunction.true(),
            )
        )
        assert {r["p"].field("age") for r in rows} == {50, 60}


class TestReferenceResolution:
    def test_assembly_resolves_and_preserves_order(self, store):
        rows = list(it.file_scan(store, CITIES, "c"))
        out = list(it.assembly(store, rows, RefSource("c", "mayor"), "m", window=2))
        assert [r["c"].field("name") for r in out] == ["c0", "c1", "c2", "c3"]
        assert [r["m"].field("age") for r in out] == [50, 40, 30, 60]

    def test_assembly_window_one_equals_window_many(self, store):
        rows = list(it.file_scan(store, CITIES, "c"))
        a = list(it.assembly(store, rows, RefSource("c", "mayor"), "m", window=1))
        b = list(it.assembly(store, rows, RefSource("c", "mayor"), "m", window=64))
        assert [r["m"].oid for r in a] == [r["m"].oid for r in b]

    def test_assembly_of_bare_ref(self, store):
        rows = list(it.file_scan(store, CITIES, "c"))
        unnested = list(it.unnest(rows, "c", "sisters", "s_ref"))
        out = list(
            it.assembly(store, unnested, RefSource("s_ref", None), "s", window=4)
        )
        assert all(r["s"].resident for r in out)

    def test_pointer_join_same_result_as_assembly(self, store):
        rows = list(it.file_scan(store, CITIES, "c"))
        a = list(it.assembly(store, rows, RefSource("c", "mayor"), "m", window=8))
        b = list(
            it.pointer_join(
                store,
                it.file_scan(store, CITIES, "c"),
                RefSource("c", "mayor"),
                "m",
            )
        )
        assert [r["m"].oid for r in a] == [r["m"].oid for r in b]

    def test_warm_start_same_result(self, store):
        a = list(
            it.warm_start_assembly(
                store,
                it.file_scan(store, CITIES, "c"),
                RefSource("c", "mayor"),
                "m",
                PERSONS,
            )
        )
        assert [r["m"].field("age") for r in a] == [50, 40, 30, 60]


class TestUnnest:
    def test_fanout(self, store):
        rows = list(it.file_scan(store, CITIES, "c"))
        out = list(it.unnest(rows, "c", "sisters", "s"))
        assert len(out) == 1 + 1 + 3 + 0

    def test_empty_set_produces_nothing(self, store):
        rows = [r for r in it.file_scan(store, CITIES, "c") if r["c"].field("name") == "c3"]
        assert list(it.unnest(rows, "c", "sisters", "s")) == []


class TestJoins:
    def _sides(self, store):
        cities = list(it.file_scan(store, CITIES, "c"))
        people = list(it.file_scan(store, PERSONS, "p"))
        pred = Conjunction.of(
            Comparison(
                FieldRef("c", "name"), CompOp.NE, Const("zzz")
            )
        )
        return cities, people

    def test_hash_join_on_ref_eq_self(self, store):
        cities, people = self._sides(store)
        pred = Conjunction.of(
            Comparison(
                SelfOid("p"),
                CompOp.EQ,
                __import__(
                    "repro.algebra.predicates", fromlist=["RefAttr"]
                ).RefAttr("c", "mayor"),
            )
        )
        out = list(it.hash_join(people, cities, pred))
        assert len(out) == 4
        for row in out:
            assert row["c"].field("mayor") == row["p"].oid

    def test_hash_join_with_residual(self, store):
        from repro.algebra.predicates import RefAttr

        cities, people = self._sides(store)
        pred = Conjunction.of(
            Comparison(SelfOid("p"), CompOp.EQ, RefAttr("c", "mayor")),
            Comparison(FieldRef("p", "age"), CompOp.GE, Const(50)),
        )
        out = list(it.hash_join(people, cities, pred))
        assert {r["p"].field("age") for r in out} == {50, 60}

    def test_hash_join_requires_equi(self, store):
        cities, people = self._sides(store)
        pred = Conjunction.of(
            Comparison(FieldRef("p", "age"), CompOp.LT, FieldRef("c", "name"))
        )
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            list(it.hash_join(people, cities, pred))

    def test_hash_join_empty_sides(self, store):
        from repro.algebra.predicates import RefAttr

        pred = Conjunction.of(
            Comparison(SelfOid("p"), CompOp.EQ, RefAttr("c", "mayor"))
        )
        cities, people = self._sides(store)
        assert list(it.hash_join([], cities, pred)) == []
        assert list(it.hash_join(people, [], pred)) == []

    def test_nested_loops_matches_hash_join(self, store):
        from repro.algebra.predicates import RefAttr

        cities, people = self._sides(store)
        pred = Conjunction.of(
            Comparison(SelfOid("p"), CompOp.EQ, RefAttr("c", "mayor"))
        )
        hj = {
            (r["c"].oid, r["p"].oid) for r in it.hash_join(people, cities, pred)
        }
        nl = {
            (r["c"].oid, r["p"].oid)
            for r in it.nested_loops_join(people, cities, pred)
        }
        assert hj == nl


class TestProjectAndSetOps:
    def test_project_fields(self, store):
        rows = it.file_scan(store, PERSONS, "p")
        items = (ProjectItem("n", FieldRef("p", "name")),)
        out = list(it.project(rows, items, distinct=False))
        assert [r["n"] for r in out] == ["joe", "ann", "joe", "bob"]

    def test_project_distinct(self, store):
        rows = it.file_scan(store, PERSONS, "p")
        items = (ProjectItem("n", FieldRef("p", "name")),)
        out = list(it.project(rows, items, distinct=True))
        assert [r["n"] for r in out] == ["joe", "ann", "bob"]

    def test_union_dedups(self, store):
        a = list(it.file_scan(store, CITIES, "c"))
        out = list(it.set_op(SetOpKind.UNION, a, a))
        assert len(out) == 4

    def test_intersect_and_difference(self, store):
        a = list(it.file_scan(store, CITIES, "c"))
        first_two, last_three = a[:2], a[1:]
        inter = list(it.set_op(SetOpKind.INTERSECT, first_two, last_three))
        assert len(inter) == 1
        diff = list(it.set_op(SetOpKind.DIFFERENCE, first_two, last_three))
        assert len(diff) == 1
        assert diff[0]["c"].oid == a[0]["c"].oid
