"""Unit tests for the physical plan model (costs, rendering, signatures)."""

import pytest

from repro.algebra.operators import RefSource
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.catalog.catalog import IndexDef
from repro.optimizer.cost import Cost
from repro.optimizer.physical_props import PhysProps, SortKey
from repro.optimizer.plans import (
    AssemblyNode,
    FileScanNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    SortNode,
    plan_algorithms,
    plan_signature,
)


@pytest.fixture()
def plan():
    scan = FileScanNode(
        "Cities",
        "c",
        delivered=PhysProps.of("c"),
        rows=10_000,
        local_cost=Cost(1.0, 0.5),
    )
    assembly = AssemblyNode(
        RefSource("c", "mayor"),
        "c.mayor",
        window=8,
        children=(scan,),
        delivered=PhysProps.of("c", "c.mayor"),
        rows=10_000,
        local_cost=Cost(68.0, 0.5),
    )
    return FilterNode(
        Conjunction.of(
            Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        ),
        children=(assembly,),
        delivered=PhysProps.of("c", "c.mayor"),
        rows=2,
        local_cost=Cost(0.0, 0.5),
    )


class TestCostAggregation:
    def test_total_cost_sums_subtree(self, plan):
        assert plan.total_cost.total == pytest.approx(70.5)
        assert plan.total_cost.io_seconds == pytest.approx(69.0)

    def test_leaf_total_equals_local(self, plan):
        leaf = plan.children[0].children[0]
        assert leaf.total_cost == leaf.local_cost


class TestRendering:
    def test_paper_style_lines(self, plan):
        text = plan.pretty()
        lines = text.splitlines()
        assert lines[0].startswith("Filter 'Joe' == c.mayor.name")
        assert lines[1].strip() == "Assembly c.mayor"
        assert lines[2].strip() == "File Scan Cities: c"

    def test_costs_annotation(self, plan):
        text = plan.pretty(costs=True)
        assert "~2 rows" in text
        assert "total 70.500s" in text

    def test_props_annotation(self, plan):
        text = plan.pretty(props=True)
        assert "<delivers {c, c.mayor}>" in text

    def test_enforcer_marker(self):
        node = AssemblyNode(
            RefSource("c", "mayor"), "c.mayor", window=8, enforcer=True
        )
        assert "(enforcer)" in node.describe()

    def test_named_mat_rendering(self):
        node = AssemblyNode(RefSource("m_ref", None), "m", window=8)
        assert node.describe() == "Assembly m_ref: m"

    def test_index_scan_residual_rendering(self):
        node = IndexScanNode(
            "Cities",
            "c",
            IndexDef("ix", "Cities", ("mayor", "name"), 10),
            Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe")),
            Conjunction.of(
                Comparison(FieldRef("c", "population"), CompOp.GT, Const(5))
            ),
        )
        text = node.describe()
        assert "Index Scan Cities" in text
        assert "residual" in text

    def test_sort_node_rendering(self):
        node = SortNode(delivered=PhysProps.of(order=SortKey("c", "name", False)))
        assert node.describe() == "Sort by c.name desc"


class TestIntrospection:
    def test_walk_preorder(self, plan):
        assert plan_algorithms(plan) == ["Filter", "Assembly", "FileScan"]

    def test_signature_ignores_parameters(self, plan):
        other = FilterNode(
            Conjunction.of(
                Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Sue"))
            ),
            children=plan.children,
            delivered=plan.delivered,
            rows=5,
            local_cost=Cost(),
        )
        assert plan_signature(plan) == plan_signature(other)

    def test_signature_distinguishes_shape(self, plan):
        join = HashJoinNode(
            Conjunction.of(
                Comparison(RefAttr("c", "mayor"), CompOp.EQ, SelfOid("p"))
            ),
            children=(plan.children[0], plan.children[0]),
        )
        assert plan_signature(join) != plan_signature(plan)

    def test_algorithm_name(self, plan):
        assert plan.algorithm == "Filter"
        assert plan.children[0].algorithm == "Assembly"
