"""Unit tests for the Lesson 9 argument transformation rules."""

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.simplify.argument_rules import ALL_RULES, normalize_predicate

POP = FieldRef("c", "population")
NAME = FieldRef("c", "name")


def comp(l, op, r):
    return Comparison(l, op, r)


def conj(*comps):
    return Conjunction.from_iterable(comps)


class TestFoldConstants:
    def test_true_constant_dropped(self):
        result = normalize_predicate(
            conj(comp(Const(1), CompOp.LT, Const(2)), comp(POP, CompOp.EQ, Const(5)))
        )
        assert not result.contradiction
        assert len(result.predicate.comparisons) == 1

    def test_false_constant_poisons(self):
        result = normalize_predicate(conj(comp(Const(2), CompOp.LT, Const(1))))
        assert result.contradiction

    def test_type_mismatch_is_false(self):
        result = normalize_predicate(conj(comp(Const("a"), CompOp.LT, Const(1))))
        assert result.contradiction


class TestDropTautologies:
    def test_t_eq_t_dropped(self):
        result = normalize_predicate(conj(comp(POP, CompOp.EQ, POP)))
        assert not result.contradiction
        assert result.predicate.is_true

    def test_t_ne_t_poisons(self):
        result = normalize_predicate(conj(comp(POP, CompOp.NE, POP)))
        assert result.contradiction

    def test_le_ge_self_true(self):
        for op in (CompOp.LE, CompOp.GE):
            result = normalize_predicate(conj(comp(POP, op, POP)))
            assert result.predicate.is_true


class TestTightenBounds:
    def test_redundant_lower_bound_dropped(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.GT, Const(3)), comp(POP, CompOp.GT, Const(5)))
        )
        assert result.predicate == conj(comp(POP, CompOp.GT, Const(5)))

    def test_equalities_conflict(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.EQ, Const(1)), comp(POP, CompOp.EQ, Const(2)))
        )
        assert result.contradiction

    def test_empty_interval(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.LT, Const(2)), comp(POP, CompOp.GT, Const(7)))
        )
        assert result.contradiction

    def test_touching_strict_bounds_empty(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.LT, Const(5)), comp(POP, CompOp.GE, Const(5)))
        )
        assert result.contradiction

    def test_touching_inclusive_bounds_become_equality(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.LE, Const(5)), comp(POP, CompOp.GE, Const(5)))
        )
        assert result.predicate == conj(comp(POP, CompOp.EQ, Const(5)))

    def test_eq_excluded_by_ne(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.EQ, Const(5)), comp(POP, CompOp.NE, Const(5)))
        )
        assert result.contradiction

    def test_distinct_terms_independent(self):
        result = normalize_predicate(
            conj(
                comp(POP, CompOp.GT, Const(3)),
                comp(NAME, CompOp.EQ, Const("x")),
            )
        )
        assert len(result.predicate.comparisons) == 2

    def test_mixed_type_bounds_survive(self):
        """Unorderable constants disable the analysis but keep semantics."""
        result = normalize_predicate(
            conj(comp(POP, CompOp.GT, Const(3)), comp(POP, CompOp.GT, Const("a")))
        )
        assert not result.contradiction
        assert len(result.predicate.comparisons) == 2

    def test_flipped_constant_side(self):
        result = normalize_predicate(
            conj(comp(Const(5), CompOp.GT, POP), comp(Const(2), CompOp.GT, POP))
        )
        assert result.predicate == conj(comp(POP, CompOp.LT, Const(2)))


class TestPropagateEqualities:
    def test_transitive_closure_added(self):
        a = RefAttr("e", "department")
        b = SelfOid("d")
        c = RefAttr("x", "department")
        result = normalize_predicate(
            conj(comp(a, CompOp.EQ, b), comp(b, CompOp.EQ, c)),
            rules=ALL_RULES,
        )
        assert comp(a, CompOp.EQ, c).canonical() in result.predicate.comparisons

    def test_off_by_default(self):
        a = RefAttr("e", "department")
        b = SelfOid("d")
        c = RefAttr("x", "department")
        result = normalize_predicate(
            conj(comp(a, CompOp.EQ, b), comp(b, CompOp.EQ, c))
        )
        assert len(result.predicate.comparisons) == 2

    def test_constants_not_unioned(self):
        result = normalize_predicate(
            conj(comp(POP, CompOp.EQ, Const(5))), rules=ALL_RULES
        )
        assert len(result.predicate.comparisons) == 1


class TestEngine:
    def test_fixpoint_idempotent(self):
        predicate = conj(
            comp(POP, CompOp.GT, Const(3)),
            comp(POP, CompOp.GT, Const(5)),
            comp(NAME, CompOp.EQ, Const("x")),
        )
        once = normalize_predicate(predicate)
        twice = normalize_predicate(once.predicate)
        assert once.predicate == twice.predicate

    def test_true_stays_true(self):
        result = normalize_predicate(Conjunction.true())
        assert result.predicate.is_true
        assert not result.contradiction

    def test_contradiction_short_circuits(self):
        result = normalize_predicate(
            conj(
                comp(Const(1), CompOp.EQ, Const(2)),
                comp(POP, CompOp.GT, Const(3)),
            )
        )
        assert result.contradiction
        assert result.predicate.is_true  # payload cleared


class TestSimplifierIntegration:
    def test_contradictory_query_yields_false_filter(self, indexed_db):
        result = indexed_db.query(
            "SELECT * FROM c IN Cities "
            "WHERE c.population == 1 AND c.population == 2"
        )
        assert result.rows == []
        assert result.optimization.plan.rows == 0

    def test_redundant_bounds_simplified_in_tree(self, indexed_db):
        sq = indexed_db.simplify(
            "SELECT * FROM c IN Cities "
            "WHERE c.population > 3 AND c.population > 500000"
        )
        from repro.algebra.operators import Select

        select = sq.tree
        while not isinstance(select, Select):
            select = select.children[0]
        assert len(select.predicate.comparisons) == 1
