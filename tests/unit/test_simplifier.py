"""Unit tests for simplification: user algebra -> optimizer algebra."""

import pytest

from repro.algebra.operators import (
    Join,
    Mat,
    Project,
    Select,
    SetOp,
    SetOpKind,
    Unnest,
)
from repro.algebra.predicates import (
    FieldRef,
    ObjectTerm,
    RefAttr,
    SelfOid,
)
from repro.catalog.sample_db import build_catalog
from repro.errors import QueryTypeError
from repro.lang.parser import parse_query
from repro.simplify.simplifier import simplify, simplify_full


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


def ops_chain(tree):
    """Top-down list of operator class names along the left spine."""
    names = []
    node = tree
    while True:
        names.append(type(node).__name__)
        if not node.children:
            return names
        node = node.children[0]


class TestPathExpressions:
    def test_figure5_shape(self, catalog):
        """Query 1 must simplify to Project/Select/Mat/Mat/Mat/Get."""
        tree = simplify(
            parse_query(
                "SELECT Newobject(e.name(), e.department().name(), e.job().name()) "
                "FROM Employee e IN Employees "
                "WHERE e.department().plant().location() == 'Dallas'"
            ),
            catalog,
        )
        assert ops_chain(tree) == [
            "Project", "Select", "Mat", "Mat", "Mat", "Get",
        ]

    def test_each_link_is_one_mat(self, catalog):
        tree = simplify(
            parse_query(
                "SELECT * FROM City c IN Cities "
                "WHERE c.country.president.name == 'x'"
            ),
            catalog,
        )
        mats = [n for n in _walk(tree) if isinstance(n, Mat)]
        assert {m.out for m in mats} == {"c.country", "c.country.president"}

    def test_shared_path_prefix_single_mat(self, catalog):
        """c.mayor used twice -> exactly one Mat (CSE at simplification)."""
        tree = simplify(
            parse_query(
                "SELECT c.mayor.age FROM City c IN Cities "
                "WHERE c.mayor.name == 'Joe'"
            ),
            catalog,
        )
        mats = [n for n in _walk(tree) if isinstance(n, Mat)]
        assert len(mats) == 1
        assert mats[0].out == "c.mayor"

    def test_single_link_field_needs_no_mat(self, catalog):
        tree = simplify(
            parse_query("SELECT * FROM c IN Cities WHERE c.name == 'x'"),
            catalog,
        )
        assert not [n for n in _walk(tree) if isinstance(n, Mat)]

    def test_predicate_uses_canonical_mat_var(self, catalog):
        tree = simplify(
            parse_query("SELECT * FROM c IN Cities WHERE c.mayor.name == 'Joe'"),
            catalog,
        )
        select = next(n for n in _walk(tree) if isinstance(n, Select))
        fields = [
            t
            for comp in select.predicate.comparisons
            for t in (comp.left, comp.right)
            if isinstance(t, FieldRef)
        ]
        assert fields[0] == FieldRef("c.mayor", "name")


class TestSetValuedPaths:
    def test_figure3_shape(self, catalog):
        """Range over a set-valued path -> Mat over Unnest over Get."""
        tree = simplify(
            parse_query(
                "SELECT m.name FROM Task t IN Tasks, Employee m IN t.team_members"
            ),
            catalog,
        )
        assert ops_chain(tree) == ["Project", "Mat", "Unnest", "Get"]
        unnest = next(n for n in _walk(tree) if isinstance(n, Unnest))
        assert unnest.attr == "team_members"

    def test_unused_element_not_materialized(self, catalog):
        """If the element's attributes are never touched, no Mat is emitted."""
        tree = simplify(
            parse_query(
                "SELECT t.name FROM Task t IN Tasks, Employee m IN t.team_members"
            ),
            catalog,
        )
        assert not [n for n in _walk(tree) if isinstance(n, Mat)]

    def test_exists_flattened(self, catalog):
        """Query 4: EXISTS flattens into Unnest + Mat + conjuncts."""
        tree = simplify(
            parse_query(
                "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
                "SELECT m FROM Employee m IN t.team_members "
                "WHERE m.name == 'Fred')"
            ),
            catalog,
        )
        assert ops_chain(tree) == ["Select", "Mat", "Unnest", "Get"]
        select = next(n for n in _walk(tree) if isinstance(n, Select))
        assert len(select.predicate.comparisons) == 2


class TestMultipleRanges:
    def test_cartesian_join_with_predicates_in_select(self, catalog):
        tree = simplify(
            parse_query(
                "SELECT Newobject(e.name(), d.name()) "
                "FROM Employee e IN Employees, Department d IN extent(Department) "
                "WHERE e.department == d"
            ),
            catalog,
        )
        join = next(n for n in _walk(tree) if isinstance(n, Join))
        assert join.predicate.is_true  # simplification makes no choices
        select = next(n for n in _walk(tree) if isinstance(n, Select))
        comp = select.predicate.comparisons[0]
        terms = {type(comp.left), type(comp.right)}
        assert terms == {RefAttr, SelfOid}

    def test_first_range_must_be_collection(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(
                parse_query("SELECT * FROM m IN t.team_members"), catalog
            )


class TestResultVars:
    def test_select_star_result_vars(self, catalog):
        sq = simplify_full(
            parse_query("SELECT * FROM c IN Cities WHERE c.name == 'x'"),
            catalog,
        )
        assert sq.result_vars == ("c",)

    def test_select_star_materializes_set_range_var(self, catalog):
        sq = simplify_full(
            parse_query(
                "SELECT * FROM Task t IN Tasks, Employee m IN t.team_members"
            ),
            catalog,
        )
        assert sq.result_vars == ("t", "m")
        assert any(
            isinstance(n, Mat) and n.out == "m" for n in _walk(sq.tree)
        )

    def test_projection_has_no_result_vars(self, catalog):
        sq = simplify_full(
            parse_query("SELECT c.name FROM c IN Cities"), catalog
        )
        assert sq.result_vars == ()
        assert isinstance(sq.tree, Project)


class TestProjection:
    def test_bare_var_projects_object(self, catalog):
        tree = simplify(parse_query("SELECT c FROM c IN Cities"), catalog)
        assert isinstance(tree, Project)
        assert isinstance(tree.items[0].term, ObjectTerm)

    def test_ref_path_projection_materializes(self, catalog):
        tree = simplify(parse_query("SELECT c.mayor FROM c IN Cities"), catalog)
        assert isinstance(tree.items[0].term, ObjectTerm)
        assert any(isinstance(n, Mat) for n in _walk(tree))

    def test_distinct_flag(self, catalog):
        tree = simplify(
            parse_query("SELECT DISTINCT c.name FROM c IN Cities"), catalog
        )
        assert tree.distinct

    def test_set_valued_projection_rejected(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(parse_query("SELECT t.team_members FROM t IN Tasks"), catalog)


class TestSetQueries:
    def test_union_of_projects(self, catalog):
        tree = simplify(
            parse_query(
                "SELECT c.name FROM c IN Cities UNION "
                "SELECT k.name FROM k IN Capitals"
            ),
            catalog,
        )
        assert isinstance(tree, SetOp)
        assert tree.kind is SetOpKind.UNION


class TestErrors:
    def test_unknown_collection(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(parse_query("SELECT * FROM x IN Nowhere"), catalog)

    def test_unknown_variable(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(
                parse_query("SELECT * FROM c IN Cities WHERE z.name == 'x'"),
                catalog,
            )

    def test_type_mismatch(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(parse_query("SELECT * FROM Person c IN Cities"), catalog)

    def test_duplicate_range_var(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(
                parse_query("SELECT * FROM c IN Cities, c IN Capitals"),
                catalog,
            )

    def test_scalar_link_mid_path(self, catalog):
        with pytest.raises(QueryTypeError):
            simplify(
                parse_query("SELECT * FROM c IN Cities WHERE c.name.length == 1"),
                catalog,
            )


def _walk(tree):
    yield tree
    for child in tree.children:
        yield from _walk(child)
