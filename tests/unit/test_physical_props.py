"""Unit tests for the presence-in-memory property vectors."""

from repro.optimizer.physical_props import PhysProps


class TestPhysProps:
    def test_satisfies_superset(self):
        assert PhysProps.of("a", "b").satisfies(PhysProps.of("a"))
        assert PhysProps.of("a").satisfies(PhysProps.none())
        assert not PhysProps.of("a").satisfies(PhysProps.of("a", "b"))

    def test_union_add_remove(self):
        props = PhysProps.of("a").union(PhysProps.of("b"))
        assert props == PhysProps.of("a", "b")
        assert props.add("c") == PhysProps.of("a", "b", "c")
        assert props.remove("a") == PhysProps.of("b")
        assert props.remove("zzz") == props

    def test_restrict(self):
        props = PhysProps.of("a", "b", "c")
        assert props.restrict(frozenset({"b", "z"})) == PhysProps.of("b")

    def test_hashable_and_eq(self):
        assert PhysProps.of("a", "b") == PhysProps.of("b", "a")
        assert len({PhysProps.of("a"), PhysProps.of("a")}) == 1

    def test_iteration_sorted(self):
        assert list(PhysProps.of("b", "a")) == ["a", "b"]

    def test_str(self):
        assert str(PhysProps.none()) == "{}"
        assert str(PhysProps.of("c", "a")) == "{a, c}"

    def test_is_empty(self):
        assert PhysProps.none().is_empty
        assert not PhysProps.of("x").is_empty
