"""Unit tests for the vectorized backend's columnar chunk operators.

The contract under test: chunk-wise evaluation matches the row-at-a-time
interpreter exactly — SQL null semantics (None compares false, TypeError
compares false), conjunct short-circuiting, DISTINCT first-occurrence
keeping across chunk boundaries, and chunk-granular governor polls.
"""

import pytest

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
)
from repro.engine.backends.vectorized import (
    CHUNK_ROWS,
    Chunk,
    _apply_comparison,
    _filter_chunk,
    _flatten,
    _governed_chunks,
    _rechunk,
    _term_column,
)
from repro.engine.tuples import Obj, eval_comparison
from repro.errors import ExecutionError, QueryCancelled
from repro.governor.context import QueryContext
from repro.storage.objects import Oid


def _obj(i, **data):
    return Obj(Oid("T", i), data)


def _chunk_of(var, objs):
    return Chunk({var: list(objs)}, len(objs))


class TestChunk:
    def test_row_and_gather(self):
        chunk = Chunk({"a": [1, 2, 3], "b": ["x", "y", "z"]}, 3)
        assert chunk.row(1) == {"a": 2, "b": "y"}
        picked = chunk.gather([2, 0])
        assert picked.length == 2
        assert picked.row(0) == {"a": 3, "b": "z"}
        assert picked.row(1) == {"a": 1, "b": "x"}

    def test_rechunk_flatten_round_trip(self):
        rows = [{"a": i, "b": -i} for i in range(CHUNK_ROWS * 2 + 5)]
        chunks = list(_rechunk(iter(rows)))
        assert [c.length for c in chunks] == [CHUNK_ROWS, CHUNK_ROWS, 5]
        assert list(_flatten(iter(chunks))) == rows


class TestNullSemantics:
    """None on either side compares false; TypeError compares false."""

    def test_null_attribute_compares_false(self):
        objs = [_obj(0, v=1), _obj(1, v=None), _obj(2, v=3)]
        chunk = _chunk_of("x", objs)
        comp = Comparison(FieldRef("x", "v"), CompOp.GE, Const(0))
        kept = _apply_comparison(comp, chunk, [0, 1, 2])
        assert kept == [0, 2]

    def test_null_constant_compares_false(self):
        chunk = _chunk_of("x", [_obj(0, v=1)])
        comp = Comparison(FieldRef("x", "v"), CompOp.EQ, Const(None))
        assert _apply_comparison(comp, chunk, [0]) == []

    def test_type_error_compares_false(self):
        objs = [_obj(0, v=5), _obj(1, v="five"), _obj(2, v=7)]
        chunk = _chunk_of("x", objs)
        comp = Comparison(FieldRef("x", "v"), CompOp.LT, Const(6))
        assert _apply_comparison(comp, chunk, [0, 1, 2]) == [0]

    def test_matches_row_at_a_time_oracle(self):
        values = [1, None, "s", 0, 6, True]
        objs = [_obj(i, v=v) for i, v in enumerate(values)]
        chunk = _chunk_of("x", objs)
        for op in CompOp:
            comp = Comparison(FieldRef("x", "v"), op, Const(3))
            kept = _apply_comparison(comp, chunk, list(range(len(objs))))
            oracle = [
                i
                for i, o in enumerate(objs)
                if eval_comparison(comp, {"x": o})
            ]
            assert kept == oracle, op


class TestFilterChunk:
    def test_conjunct_short_circuit(self):
        # Row 1's 'v' is not an object binding for the second conjunct's
        # purposes — but the first conjunct rejects it, so the second is
        # never evaluated there (exactly the interpreter's behaviour).
        objs = [_obj(0, keep=1, v=2), _obj(1, keep=0, v="boom")]
        chunk = _chunk_of("x", objs)
        predicate = Conjunction.of(
            Comparison(FieldRef("x", "keep"), CompOp.EQ, Const(1)),
            Comparison(FieldRef("x", "v"), CompOp.LT, Const(9)),
        )
        out = _filter_chunk(chunk, predicate)
        assert out is not None and out.length == 1
        assert out.row(0)["x"].data["keep"] == 1

    def test_all_kept_returns_same_chunk(self):
        chunk = _chunk_of("x", [_obj(0, v=1), _obj(1, v=2)])
        predicate = Conjunction.of(
            Comparison(FieldRef("x", "v"), CompOp.GE, Const(0))
        )
        assert _filter_chunk(chunk, predicate) is chunk

    def test_none_kept_returns_none(self):
        chunk = _chunk_of("x", [_obj(0, v=1)])
        predicate = Conjunction.of(
            Comparison(FieldRef("x", "v"), CompOp.GT, Const(99))
        )
        assert _filter_chunk(chunk, predicate) is None


class TestTermColumn:
    def test_non_object_binding_raises_interpreter_message(self):
        chunk = Chunk({"x": [42]}, 1)
        with pytest.raises(ExecutionError, match="not an object binding"):
            _term_column(FieldRef("x", "v"), chunk, [0])

    def test_lazy_evaluation_only_at_surviving_indices(self):
        # The bad value at position 1 is never touched when indices skip it.
        chunk = Chunk({"x": [_obj(0, v=1), 42]}, 2)
        assert _term_column(FieldRef("x", "v"), chunk, [0]) == [1]


class TestGovernedChunks:
    def test_polls_before_first_and_per_chunk(self):
        calls = []

        class Ctx:
            def check(self):
                calls.append(1)

        chunks = [Chunk({"a": [1]}, 1), Chunk({"a": [2]}, 1)]
        list(_governed_chunks(iter(chunks), Ctx()))
        assert len(calls) == 3  # up-front + one per chunk

    def test_cancel_fires_between_chunks(self):
        ctx = QueryContext()
        ctx.start()

        def chunks():
            yield Chunk({"a": [1]}, 1)
            ctx.cancel()
            yield Chunk({"a": [2]}, 1)

        stream = _governed_chunks(chunks(), ctx)
        assert next(stream).length == 1
        with pytest.raises(QueryCancelled):
            next(stream)
            next(stream)
