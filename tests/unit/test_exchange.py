"""Unit tests for the exchange operator (repro.engine.parallel).

The exchange is the only operator that knows threads exist, so its
contract is tested in isolation: merge completeness, ordered-merge
correctness on pre-sorted partition streams, error propagation from
worker threads, clean shutdown of abandoned iterators, and the
degenerate single-partition case.
"""

import threading
import time

import pytest

from repro.engine.parallel import Exchange, merge_key
from repro.engine.tuples import Obj
from repro.errors import ExecutionError
from repro.storage.objects import Oid


def rows_of(values, var="x"):
    """Partition stream of plain scalar bindings."""
    return iter([{var: v} for v in values])


class TestUnorderedMerge:
    def test_all_rows_from_all_partitions_arrive(self):
        exchange = Exchange(
            [rows_of(range(0, 50)), rows_of(range(50, 80)), rows_of(range(80, 100))]
        )
        got = sorted(row["x"] for row in exchange)
        assert got == list(range(100))

    def test_empty_partitions_are_fine(self):
        exchange = Exchange([rows_of([]), rows_of([1, 2]), rows_of([])])
        assert sorted(row["x"] for row in exchange) == [1, 2]

    def test_single_partition_degenerates_to_passthrough(self):
        exchange = Exchange([rows_of([3, 1, 2])])
        assert [row["x"] for row in exchange] == [3, 1, 2]

    def test_more_rows_than_queue_capacity(self):
        # Forces producers to block on a full queue and resume.
        exchange = Exchange(
            [rows_of(range(1000)), rows_of(range(1000, 2000))], capacity=4
        )
        assert sorted(row["x"] for row in exchange) == list(range(2000))


class TestOrderedMerge:
    def test_merge_preserves_global_order(self):
        key = merge_key("x", None)
        parts = [rows_of(range(0, 90, 3)), rows_of(range(1, 90, 3)), rows_of(range(2, 90, 3))]
        exchange = Exchange(parts, ordered=True, key=key)
        got = [row["x"] for row in exchange]
        assert got == sorted(got) == list(range(90))

    def test_descending_merge(self):
        key = merge_key("x", None, ascending=False)
        parts = [rows_of([9, 5, 1]), rows_of([8, 4, 0]), rows_of([7, 3])]
        exchange = Exchange(parts, ordered=True, key=key)
        assert [row["x"] for row in exchange] == [9, 8, 7, 5, 4, 3, 1, 0]

    def test_merge_on_object_attribute(self):
        def obj_rows(salaries):
            return iter(
                {
                    "e": Obj(
                        Oid("Employee", i), {"salary": s}
                    )
                }
                for i, s in enumerate(salaries)
            )

        key = merge_key("e", "salary")
        exchange = Exchange(
            [obj_rows([10, 30, 50]), obj_rows([20, 40, 60])],
            ordered=True,
            key=key,
        )
        assert [row["e"].field("salary") for row in exchange] == [
            10, 20, 30, 40, 50, 60,
        ]

    def test_merge_on_oid_identity(self):
        def oid_rows(serials):
            return iter({"e": Obj(Oid("T", n), {})} for n in serials)

        key = merge_key("e", None)
        exchange = Exchange(
            [oid_rows([0, 2, 4]), oid_rows([1, 3, 5])], ordered=True, key=key
        )
        assert [row["e"].oid.serial for row in exchange] == [0, 1, 2, 3, 4, 5]

    def test_ordered_without_key_rejected(self):
        with pytest.raises(ExecutionError):
            Exchange([rows_of([1])], ordered=True)


class TestErrorPropagation:
    def test_worker_exception_reaches_consumer(self):
        def exploding():
            yield {"x": 1}
            raise ValueError("partition blew up")

        exchange = Exchange([exploding(), rows_of(range(100))])
        with pytest.raises(ValueError, match="partition blew up"):
            for _ in exchange:
                pass

    def test_worker_exception_closes_all_workers(self):
        def exploding():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        exchange = Exchange([exploding(), rows_of(range(10_000))], capacity=2)
        with pytest.raises(RuntimeError):
            list(exchange)
        # close() ran in the merge's finally: no worker threads left.
        assert exchange._threads == []
        assert exchange._stop.is_set()

    def test_ordered_merge_propagates_errors_too(self):
        def exploding():
            yield {"x": 0}
            raise ValueError("mid-stream")

        key = merge_key("x", None)
        exchange = Exchange(
            [exploding(), rows_of([1, 2, 3])], ordered=True, key=key
        )
        with pytest.raises(ValueError, match="mid-stream"):
            list(exchange)


class TestShutdown:
    def test_abandoned_iterator_unblocks_producers(self):
        # A tiny queue guarantees the producer is blocked mid-put when the
        # consumer walks away; close() must still terminate every worker.
        exchange = Exchange([rows_of(range(100_000))], capacity=1)
        stream = iter(exchange)
        assert next(stream)["x"] == 0
        stream.close()  # generator finally -> exchange.close()
        assert exchange._threads == []
        deadline = time.time() + 5.0
        while threading.active_count() > 1 and time.time() < deadline:
            time.sleep(0.01)
        alive = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith("exchange-worker")
        ]
        assert alive == []

    def test_close_is_idempotent(self):
        exchange = Exchange([rows_of([1, 2])])
        list(exchange)
        exchange.close()
        exchange.close()

    def test_second_iteration_rejected(self):
        exchange = Exchange([rows_of([1])])
        list(exchange)
        with pytest.raises(ExecutionError):
            list(exchange)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ExecutionError):
            Exchange([])


class TestCleanShutdown:
    """The governor satellite: abandonment and worker failure must leave
    no live workers, no queued rows, and no suspended source generators."""

    @staticmethod
    def _wait_for_no_workers(timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            alive = [
                t
                for t in threading.enumerate()
                if t.is_alive() and t.name.startswith("exchange-worker")
            ]
            if not alive:
                return []
            time.sleep(0.01)
        return [t.name for t in alive]

    def test_abandonment_drains_queues(self):
        exchange = Exchange(
            [rows_of(range(10_000)), rows_of(range(10_000))], capacity=8
        )
        stream = iter(exchange)
        next(stream)
        stream.close()
        assert exchange._queues == []
        assert self._wait_for_no_workers() == []

    def test_abandonment_closes_partition_sources(self):
        closed = threading.Event()

        def tracked_source():
            try:
                for i in range(100_000):
                    yield {"x": i}
            finally:
                # Generator finalizer: must run on the worker promptly,
                # not whenever GC gets around to the suspended frame.
                closed.set()

        exchange = Exchange([tracked_source()], capacity=1)
        stream = iter(exchange)
        next(stream)
        stream.close()
        assert closed.wait(timeout=5.0), "source generator never closed"
        assert self._wait_for_no_workers() == []

    def test_worker_raise_leaves_no_threads_or_rows(self):
        def exploding():
            yield {"x": 0}
            raise ValueError("boom mid-partition")

        exchange = Exchange(
            [exploding(), rows_of(range(10_000))], capacity=4
        )
        with pytest.raises(ValueError, match="boom"):
            list(exchange)
        assert exchange._queues == []
        assert exchange._threads == []
        assert self._wait_for_no_workers() == []

    def test_worker_raise_closes_sibling_sources(self):
        closed = threading.Event()

        def sibling():
            try:
                for i in range(100_000):
                    yield {"x": i}
            finally:
                closed.set()

        def exploding():
            yield {"x": -1}
            raise ValueError("boom")

        exchange = Exchange([exploding(), sibling()], capacity=2)
        with pytest.raises(ValueError):
            list(exchange)
        assert closed.wait(timeout=5.0)
        assert self._wait_for_no_workers() == []

    def test_ordered_abandonment_drains_all_queues(self):
        key = merge_key("x", None)
        sources = [
            rows_of(sorted(range(i, 5_000, 3))) for i in range(3)
        ]
        exchange = Exchange(sources, ordered=True, key=key, capacity=4)
        stream = iter(exchange)
        next(stream)
        stream.close()
        assert exchange._queues == []
        assert self._wait_for_no_workers() == []
