"""Unit tests for the simple predicate language."""

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    ObjectTerm,
    RefAttr,
    SelfOid,
    VarRef,
    term_memory_vars,
    term_vars,
)


class TestTerms:
    def test_term_vars(self):
        assert term_vars(Const(5)) == frozenset()
        assert term_vars(FieldRef("c", "name")) == {"c"}
        assert term_vars(VarRef("m")) == {"m"}

    def test_memory_vars(self):
        assert term_memory_vars(Const(5)) == frozenset()
        assert term_memory_vars(FieldRef("c", "name")) == {"c"}
        assert term_memory_vars(RefAttr("c", "mayor")) == {"c"}
        assert term_memory_vars(ObjectTerm("c")) == {"c"}
        assert term_memory_vars(SelfOid("c")) == {"c"}  # conservative
        assert term_memory_vars(VarRef("m")) == frozenset()

    def test_str_forms(self):
        assert str(FieldRef("c.mayor", "name")) == "c.mayor.name"
        assert str(SelfOid("d")) == "d.self"
        assert str(Const("Dallas")) == "'Dallas'"


class TestComparison:
    def test_canonical_swaps_symmetric(self):
        a = Comparison(FieldRef("c", "name"), CompOp.EQ, Const("x"))
        b = Comparison(Const("x"), CompOp.EQ, FieldRef("c", "name"))
        assert a.canonical() == b.canonical()

    def test_canonical_flips_inequalities(self):
        a = Comparison(FieldRef("c", "age"), CompOp.LT, Const(5))
        b = Comparison(Const(5), CompOp.GT, FieldRef("c", "age"))
        assert a.canonical() == b.canonical()

    def test_flipped_ops(self):
        assert CompOp.LT.flipped() is CompOp.GT
        assert CompOp.LE.flipped() is CompOp.GE
        assert CompOp.EQ.flipped() is CompOp.EQ

    def test_equijoin_detection(self):
        comp = Comparison(RefAttr("e", "department"), CompOp.EQ, SelfOid("d"))
        assert comp.is_equijoin_between(frozenset({"e"}), frozenset({"d"}))
        assert comp.is_equijoin_between(frozenset({"d"}), frozenset({"e"}))
        assert not comp.is_equijoin_between(frozenset({"e"}), frozenset({"x"}))

    def test_const_comparison_not_equijoin(self):
        comp = Comparison(FieldRef("e", "name"), CompOp.EQ, Const("Fred"))
        assert not comp.is_equijoin_between(frozenset({"e"}), frozenset({"d"}))

    def test_non_eq_not_equijoin(self):
        comp = Comparison(FieldRef("e", "age"), CompOp.LT, FieldRef("d", "floor"))
        assert not comp.is_equijoin_between(frozenset({"e"}), frozenset({"d"}))


class TestConjunction:
    def _abc(self):
        a = Comparison(FieldRef("c", "name"), CompOp.EQ, Const("x"))
        b = Comparison(FieldRef("c", "age"), CompOp.GE, Const(30))
        c = Comparison(FieldRef("d", "floor"), CompOp.EQ, Const(3))
        return a, b, c

    def test_order_insensitive_equality(self):
        a, b, c = self._abc()
        assert Conjunction.of(a, b, c) == Conjunction.of(c, a, b)
        assert hash(Conjunction.of(a, b)) == hash(Conjunction.of(b, a))

    def test_duplicates_collapse(self):
        a, _, _ = self._abc()
        flipped = Comparison(a.right, CompOp.EQ, a.left)
        assert len(Conjunction.of(a, flipped).comparisons) == 1

    def test_true_conjunction(self):
        assert Conjunction.true().is_true
        assert str(Conjunction.true()) == "true"

    def test_vars_and_memory_vars(self):
        a, b, c = self._abc()
        conj = Conjunction.of(a, b, c)
        assert conj.vars == {"c", "d"}
        assert conj.memory_vars == {"c", "d"}

    def test_conjoin(self):
        a, b, c = self._abc()
        merged = Conjunction.of(a).conjoin(Conjunction.of(b, c))
        assert len(merged.comparisons) == 3

    def test_split_by_vars(self):
        a, b, c = self._abc()
        conj = Conjunction.of(a, b, c)
        inside, outside = conj.split_by_vars(frozenset({"c"}))
        assert inside == Conjunction.of(a, b)
        assert outside == Conjunction.of(c)

    def test_split_everything_in(self):
        a, b, _ = self._abc()
        inside, outside = Conjunction.of(a, b).split_by_vars(frozenset({"c"}))
        assert outside.is_true

    def test_without(self):
        a, b, _ = self._abc()
        conj = Conjunction.of(a, b)
        assert conj.without(a) == Conjunction.of(b)
        # Removing by a flipped-but-equal comparison also works.
        flipped = Comparison(a.right, CompOp.EQ, a.left)
        assert conj.without(flipped) == Conjunction.of(b)
