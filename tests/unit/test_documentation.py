"""Documentation coverage: every public item carries a doc comment.

The deliverable contract — "doc comments on every public item" — enforced
mechanically: every module under ``repro``, every public class, and every
public function/method must have a docstring.  Exemptions: dunder methods;
bodies of three lines or fewer (self-describing getters); and overrides
whose base-class method carries the docstring (inherited documentation,
e.g. every rule's ``apply``/``candidates``, every node's ``describe``).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it launches the CLI
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isclass(obj):
            continue
        if obj.__module__ != module.__name__:
            continue  # re-export
        if not obj.__doc__:
            undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isfunction(obj):
            continue
        if obj.__module__ != module.__name__:
            continue
        if not obj.__doc__:
            undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    undocumented = []
    for cls_name, cls in vars(module).items():
        if cls_name.startswith("_") or not inspect.isclass(cls):
            continue
        if cls.__module__ != module.__name__:
            continue
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = None
            if inspect.isfunction(member):
                func = member
            elif isinstance(member, (staticmethod, classmethod)):
                func = member.__func__
            elif isinstance(member, property):
                func = member.fget
            if func is None or func.__doc__:
                continue
            # Inherited documentation: a documented base-class method.
            inherited = any(
                name in vars(base)
                and getattr(
                    getattr(base, name, None), "__doc__", None
                )
                for base in cls.__mro__[1:]
            )
            if inherited:
                continue
            # Exempt short, self-describing bodies (simple getters,
            # one-line dispatch helpers).
            try:
                body_lines = len(inspect.getsource(func).splitlines())
            except (OSError, TypeError):
                body_lines = 0
            if body_lines <= 3:
                continue
            undocumented.append(f"{cls_name}.{name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"
