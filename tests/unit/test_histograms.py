"""Unit tests for histograms and MCV sketches (selectivity refinement)."""

import pytest

from repro.catalog.histograms import (
    Histogram,
    MostCommonValues,
    build_histogram,
    build_mcv,
)


class TestBuildHistogram:
    def test_counts_partition_total(self):
        values = list(range(100))
        hist = build_histogram(values, bins=10)
        assert hist is not None
        assert sum(hist.counts) == 100
        assert hist.total == 100
        assert hist.distinct == 100

    def test_non_numeric_returns_none(self):
        assert build_histogram(["a", "b"]) is None
        assert build_histogram([1, "b"]) is None
        assert build_histogram([True, False]) is None  # bools excluded

    def test_empty_returns_none(self):
        assert build_histogram([]) is None

    def test_constant_values_single_bin(self):
        hist = build_histogram([5, 5, 5])
        assert hist.counts == (3,)
        assert hist.distinct == 1


class TestHistogramEstimates:
    @pytest.fixture()
    def uniform(self) -> Histogram:
        return build_histogram(list(range(1000)), bins=20)

    def test_eq_close_to_uniform(self, uniform):
        assert uniform.selectivity_eq(500) == pytest.approx(1 / 1000, rel=0.2)

    def test_eq_outside_domain_zero(self, uniform):
        assert uniform.selectivity_eq(-5) == 0.0
        assert uniform.selectivity_eq(5000) == 0.0

    def test_eq_non_numeric_zero(self, uniform):
        assert uniform.selectivity_eq("abc") == 0.0

    def test_range_half(self, uniform):
        assert uniform.selectivity_range(low=500) == pytest.approx(0.5, abs=0.05)
        assert uniform.selectivity_range(high=250) == pytest.approx(0.25, abs=0.05)

    def test_range_full_is_one(self, uniform):
        assert uniform.selectivity_range() == pytest.approx(1.0, abs=0.01)

    def test_range_empty(self, uniform):
        assert uniform.selectivity_range(low=600, high=400) == 0.0

    def test_range_on_skewed_data(self):
        values = [1] * 900 + list(range(2, 102))
        hist = build_histogram(values, bins=10)
        # 90% of the mass sits at 1.
        assert hist.selectivity_range(high=10) > 0.8

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(Exception):
            Histogram((0.0, 1.0, 2.0), (1,), 1, 1)


class TestMcv:
    def test_tracked_value_exact(self):
        mcv = build_mcv(["a"] * 70 + ["b"] * 20 + ["c"] * 10, k=2)
        assert mcv.selectivity_eq("a") == pytest.approx(0.7)
        assert mcv.selectivity_eq("b") == pytest.approx(0.2)

    def test_untracked_value_uniform_remainder(self):
        values = ["a"] * 50 + [f"v{i}" for i in range(50)]
        mcv = build_mcv(values, k=1)
        # 50 remaining rows over 50 remaining distinct values / 100 total.
        assert mcv.selectivity_eq("v7") == pytest.approx(0.01, rel=0.5)

    def test_unknown_value_small_not_zero(self):
        mcv = build_mcv(["a", "b", "c"], k=2)
        assert 0 <= mcv.selectivity_eq("zzz") <= 0.34

    def test_empty(self):
        mcv = MostCommonValues((), 0, 0)
        assert mcv.selectivity_eq("x") == 0.0


class TestAnalyzeIntegration:
    def test_analyze_improves_range_estimate(self, fresh_db):
        query = "SELECT * FROM c IN Cities WHERE c.population >= 900000"
        naive = fresh_db.optimize(query).plan.rows
        actual = len(fresh_db.query(query).rows)
        fresh_db.analyze("Cities")
        refined = fresh_db.optimize(query).plan.rows
        assert abs(refined - actual) < abs(naive - actual)

    def test_analyze_equality_via_mcv(self, fresh_db):
        fresh_db.analyze("Cities", attributes=("name",))
        estimate = fresh_db.optimize(
            'SELECT * FROM c IN Cities WHERE c.name == "city3"'
        ).plan.rows
        assert estimate == pytest.approx(1.0, rel=0.01)

    def test_analyze_rejects_reference_attribute(self, fresh_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            fresh_db.analyze("Cities", attributes=("mayor",))

    def test_analyze_returns_attribute_list(self, fresh_db):
        analyzed = fresh_db.analyze("Cities")
        assert set(analyzed) == {"name", "population"}

    def test_analyzed_stats_do_not_change_results(self, fresh_db):
        query = "SELECT * FROM c IN Cities WHERE c.population >= 900000"
        before = {r["c"].oid for r in fresh_db.query(query).rows}
        fresh_db.analyze("Cities")
        after = {r["c"].oid for r in fresh_db.query(query).rows}
        assert before == after
