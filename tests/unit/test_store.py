"""Unit tests for the object store: segments, layout, fetch/scan charging."""

import pytest

from repro.catalog.catalog import Catalog, extent_name
from repro.catalog.schema import Schema, TypeDef, ref, scalar
from repro.errors import StorageError
from repro.storage.objects import Oid
from repro.storage.store import ObjectStore


def _catalog() -> Catalog:
    schema = Schema()
    schema.add_type(
        TypeDef("Person", 1000, (scalar("name", "str"),)), with_extent=True
    )
    schema.add_type(
        TypeDef("City", 2000, (scalar("name", "str"), ref("mayor", "Person"))),
    )
    schema.add_named_set("Cities", "City")
    return Catalog(schema, page_size=4096)


@pytest.fixture()
def store() -> ObjectStore:
    store = ObjectStore(_catalog())
    people = [store.insert("Person", {"name": f"p{i}"}) for i in range(10)]
    store.create_segment("City", dense=True)
    cities = [
        store.insert("City", {"name": f"c{i}", "mayor": people[i % 10]})
        for i in range(6)
    ]
    store.register_collection("Cities", cities)
    store.seal()
    return store


class TestLayout:
    def test_dense_packing(self, store):
        # 1000-byte persons, 4 per 4096-byte page: 10 persons -> 3 pages.
        assert store.segment("Person").page_count == 3
        assert store.page_of(Oid("Person", 0)) == store.page_of(Oid("Person", 3))
        assert store.page_of(Oid("Person", 0)) != store.page_of(Oid("Person", 4))

    def test_sparse_segment_one_per_page(self):
        store = ObjectStore(_catalog())
        store.create_segment("Person", dense=False)
        for i in range(5):
            store.insert("Person", {"name": f"p{i}"})
        store.seal()
        pages = {store.page_of(Oid("Person", i)) for i in range(5)}
        assert len(pages) == 5

    def test_segments_contiguous_and_disjoint(self, store):
        person_pages = {store.page_of(Oid("Person", i)) for i in range(10)}
        city_pages = {store.page_of(Oid("City", i)) for i in range(6)}
        assert not (person_pages & city_pages)

    def test_extent_autoregistered(self, store):
        assert store.has_collection(extent_name("Person"))
        assert store.collection_cardinality(extent_name("Person")) == 10


class TestAccess:
    def test_fetch_returns_data_and_charges(self, store):
        store.reset_accounting()
        data = store.fetch(Oid("Person", 4))
        assert data["name"] == "p4"
        assert store.disk.stats.page_reads == 1

    def test_fetch_same_page_hits_buffer(self, store):
        store.reset_accounting()
        store.fetch(Oid("Person", 0))
        store.fetch(Oid("Person", 1))  # same page
        assert store.disk.stats.page_reads == 1
        assert store.buffer.stats.hits == 1

    def test_peek_charges_nothing(self, store):
        store.reset_accounting()
        store.peek(Oid("Person", 4))
        assert store.disk.stats.page_reads == 0

    def test_scan_sequential_page_reads(self, store):
        store.reset_accounting()
        rows = list(store.scan(extent_name("Person")))
        assert len(rows) == 10
        assert store.disk.stats.page_reads == 3  # one per page

    def test_scan_named_set(self, store):
        names = [data["name"] for _, data in store.scan("Cities")]
        assert names == [f"c{i}" for i in range(6)]

    def test_dangling_reference_raises(self, store):
        with pytest.raises(StorageError):
            store.fetch(Oid("Person", 99))

    def test_unknown_collection_raises(self, store):
        with pytest.raises(StorageError):
            store.collection_oids("Nowhere")


class TestLifecycle:
    def test_read_before_seal_rejected(self):
        store = ObjectStore(_catalog())
        oid = store.insert("Person", {"name": "x"})
        with pytest.raises(StorageError):
            store.fetch(oid)

    def test_insert_after_seal_rejected(self, store):
        with pytest.raises(StorageError):
            store.insert("Person", {"name": "late"})

    def test_duplicate_segment_rejected(self, store):
        fresh = ObjectStore(_catalog())
        fresh.create_segment("Person")
        with pytest.raises(StorageError):
            fresh.create_segment("Person")

    def test_seal_idempotent(self, store):
        store.seal()  # second call: no raise, layout unchanged
        assert store.segment("Person").first_page == 0

    def test_reset_accounting_cold_flushes(self, store):
        store.fetch(Oid("Person", 0))
        store.reset_accounting(cold=True)
        assert store.buffer.resident_pages == 0
        store.fetch(Oid("Person", 0))
        assert store.disk.stats.page_reads == 1

    def test_reset_accounting_warm_keeps_pages(self, store):
        store.fetch(Oid("Person", 0))
        store.reset_accounting(cold=False)
        store.fetch(Oid("Person", 0))
        assert store.disk.stats.page_reads == 0
