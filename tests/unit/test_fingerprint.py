"""Unit tests for query fingerprinting, tagging, and template binding."""

import pytest

from repro.cache.fingerprint import (
    TaggedFloat,
    TaggedInt,
    TaggedStr,
    bind_template,
    parameterize,
    rebind_plan,
    tag_value,
    tagged_index,
)
from repro.errors import ParameterBindingError
from repro.lang.ast import ConstAst, ParamAst
from repro.lang.parser import parse_query


def fingerprint(text: str, auto: bool = True):
    return parameterize(parse_query(text), auto=auto)


class TestTaggedValues:
    def test_tagged_values_behave_like_plain(self):
        assert tag_value(3, 0) == 3
        assert tag_value(3, 0) < 4
        assert hash(tag_value("Joe", 1)) == hash("Joe")
        assert tag_value(2.5, 2) * 2 == 5.0

    def test_tagged_index_roundtrip(self):
        assert tagged_index(tag_value(3, 7)) == 7
        assert tagged_index(3) is None
        assert tagged_index("Joe") is None

    def test_tag_types(self):
        assert isinstance(tag_value(1, 0), TaggedInt)
        assert isinstance(tag_value(1.0, 0), TaggedFloat)
        assert isinstance(tag_value("x", 0), TaggedStr)

    def test_bool_and_none_rejected(self):
        with pytest.raises(ParameterBindingError):
            tag_value(True, 0)
        with pytest.raises(ParameterBindingError):
            tag_value(None, 0)


class TestAutoParameterization:
    def test_different_constants_share_fingerprint(self):
        a = fingerprint("SELECT * FROM City c IN Cities WHERE c.population == 3")
        b = fingerprint("SELECT * FROM City c IN Cities WHERE c.population == 7")
        assert a.text_key == b.text_key
        assert a.auto_values == {"?0": 3}
        assert b.auto_values == {"?0": 7}

    def test_different_shapes_differ(self):
        a = fingerprint("SELECT * FROM City c IN Cities WHERE c.population == 3")
        b = fingerprint("SELECT * FROM City c IN Cities WHERE c.population <= 3")
        assert a.text_key != b.text_key

    def test_whitespace_and_case_normalized(self):
        a = fingerprint("SELECT * FROM City c IN Cities WHERE c.population == 3")
        b = fingerprint("select *  from City c in Cities  where c.population == 3")
        assert a.text_key == b.text_key

    def test_subquery_constants_parameterized(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
            'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
        )
        assert sorted(p.auto_values.values(), key=str) == [100, "Fred"]
        assert p.cacheable

    def test_bool_constants_stay_literal(self):
        a = fingerprint("SELECT * FROM City c IN Cities WHERE c.port == true")
        b = fingerprint("SELECT * FROM City c IN Cities WHERE c.port == false")
        assert not a.slots and not b.slots
        assert a.text_key != b.text_key

    def test_const_vs_const_stays_literal(self):
        p = fingerprint("SELECT * FROM City c IN Cities WHERE 1 == 1")
        assert not p.slots
        assert p.cacheable

    def test_multiple_bounds_on_one_term_stay_literal(self):
        # tighten-bounds may merge these by value; each value pair must
        # get its own fingerprint.
        a = fingerprint(
            "SELECT * FROM City c IN Cities "
            "WHERE c.population > 3 AND c.population < 9"
        )
        b = fingerprint(
            "SELECT * FROM City c IN Cities "
            "WHERE c.population > 4 AND c.population < 9"
        )
        assert not a.slots
        assert a.cacheable
        assert a.text_key != b.text_key

    def test_join_predicates_untouched(self):
        p = fingerprint(
            "SELECT * FROM Employee e IN Employees, "
            "Department d IN extent(Department) "
            "WHERE e.department == d AND d.floor == 3"
        )
        assert p.auto_values == {"?0": 3}


class TestUserParameters:
    def test_prepared_params_collected_in_order(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks "
            "WHERE t.time == $when AND t.priority == $prio",
            auto=False,
        )
        assert p.user_param_names == ("when", "prio")
        assert p.cacheable

    def test_literals_stay_literal_in_prepared_mode(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks WHERE t.time == 100", auto=False
        )
        assert not p.slots
        assert "100" in p.text_key

    def test_param_with_sibling_bound_is_uncacheable(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks "
            "WHERE t.time == $when AND t.time < 200",
            auto=False,
        )
        assert not p.cacheable
        assert p.reason is not None

    def test_param_vs_param_is_uncacheable(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks WHERE $a == $b", auto=False
        )
        assert not p.cacheable


class TestBinding:
    def test_bind_substitutes_tagged_constants(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks WHERE t.time == $when", auto=False
        )
        bound = bind_template(p, {"when": 100}, tagged=True)
        consts = [
            c.right for c in bound.where if isinstance(c.right, ConstAst)
        ]
        assert len(consts) == 1
        assert consts[0].value == 100
        assert tagged_index(consts[0].value) == 0

    def test_bind_untagged(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks WHERE t.time == $when", auto=False
        )
        bound = bind_template(p, {"when": 100}, tagged=False)
        const = next(c.right for c in bound.where if isinstance(c.right, ConstAst))
        assert tagged_index(const.value) is None

    def test_bind_missing_value_raises(self):
        p = fingerprint(
            "SELECT * FROM Task t IN Tasks WHERE t.time == $when", auto=False
        )
        with pytest.raises(ParameterBindingError):
            bind_template(p, {}, tagged=True)

    def test_template_has_no_residual_params_after_bind(self):
        p = fingerprint("SELECT * FROM Task t IN Tasks WHERE t.time == 100")
        bound = bind_template(p, p.auto_values, tagged=True)
        assert "$" not in str(bound)


class TestRebindPlan:
    def test_rebind_replaces_tagged_constants_in_plan(self, plain_db):
        from repro.cache.fingerprint import parameterize as param_fn

        p = param_fn(
            parse_query(
                'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
            )
        )
        bound = bind_template(p, p.auto_values, tagged=True)
        from repro.simplify.simplifier import simplify_full
        from repro.optimizer.optimizer import Optimizer

        simplified = simplify_full(bound, plain_db.catalog)
        plan = Optimizer(plain_db.catalog).optimize(
            simplified.tree, result_vars=simplified.result_vars
        ).plan
        rebound = rebind_plan(plan, {0: "Fred"})
        assert "Fred" in str(rebound.pretty())
        assert "Joe" not in str(rebound.pretty())
        # The original cached plan is untouched.
        assert "Joe" in str(plan.pretty())

    def test_rebind_shares_untouched_structure(self):
        assert rebind_plan((1, 2), {}) == (1, 2)
        tagged = tag_value(5, 0)
        assert rebind_plan({"k": tagged}, {0: 9})["k"] == 9

    def test_param_ast_renders_with_dollar(self):
        assert str(ParamAst("who")) == "$who"
