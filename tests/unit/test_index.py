"""Unit tests for runtime attribute and path indexes."""

import pytest

from repro.catalog.catalog import IndexDef, extent_name
from repro.storage.datagen import JOE, generate_store, scaled_sizes
from repro.catalog.sample_db import build_catalog
from repro.storage.index import IndexRuntime


@pytest.fixture(scope="module")
def store():
    sizes = scaled_sizes(0.02)
    return generate_store(build_catalog(sizes), sizes)


class TestAttributeIndex:
    def test_equality_lookup(self, store):
        index = IndexRuntime.build(
            store, IndexDef("ix", "Tasks", ("time",), 10)
        )
        oids = index.lookup_eq(store, 100)
        assert oids
        for oid in oids:
            assert store.peek(oid)["time"] == 100

    def test_lookup_miss(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", "Tasks", ("time",), 10))
        assert index.lookup_eq(store, -1) == []

    def test_entries_cover_collection(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", "Tasks", ("time",), 10))
        assert index.entry_count == store.collection_cardinality("Tasks")

    def test_range_lookup(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", "Tasks", ("time",), 10))
        oids = index.lookup_range(store, low=10, high=30)
        assert oids
        for oid in oids:
            assert 10 <= store.peek(oid)["time"] <= 30

    def test_range_exclusive_bounds(self, store):
        index = IndexRuntime.build(store, IndexDef("ix", "Tasks", ("time",), 10))
        inclusive = index.lookup_range(store, low=10, high=30)
        exclusive = index.lookup_range(
            store, low=10, high=30, low_inclusive=False, high_inclusive=False
        )
        assert len(exclusive) < len(inclusive)


class TestPathIndex:
    def test_path_index_matches_navigation(self, store):
        """Path-index lookup must agree with a full scan + dereference."""
        index = IndexRuntime.build(
            store, IndexDef("ix", "Cities", ("mayor", "name"), 100)
        )
        via_index = set(index.lookup_eq(store, JOE))
        via_scan = {
            oid
            for oid in store.collection_oids("Cities")
            if store.peek(store.peek(oid)["mayor"])["name"] == JOE
        }
        assert via_index == via_scan
        assert via_index  # the generator plants Joes

    def test_lookup_charges_io(self, store):
        index = IndexRuntime.build(
            store, IndexDef("ix", "Cities", ("mayor", "name"), 100)
        )
        store.reset_accounting()
        index.lookup_eq(store, JOE)
        assert store.disk.stats.page_reads >= index.height

    def test_distinct_keys(self, store):
        index = IndexRuntime.build(
            store, IndexDef("ix", "Cities", ("mayor", "name"), 100)
        )
        assert 1 < index.distinct_keys() <= index.entry_count

    def test_shape_grows_with_entries(self, store):
        small = IndexRuntime.build(store, IndexDef("a", "Capitals", ("name",), 4))
        large = IndexRuntime.build(
            store, IndexDef("b", extent_name("Employee"), ("name",), 4)
        )
        assert large.leaf_pages > small.leaf_pages
        assert large.height >= small.height >= 1
