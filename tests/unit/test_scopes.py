"""Unit tests for scope derivation — the algebra's type checker."""

import pytest

from repro.algebra.operators import (
    Get,
    Join,
    Mat,
    Project,
    ProjectItem,
    RefSource,
    Select,
    SetOp,
    SetOpKind,
    Unnest,
)
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    ObjectTerm,
    RefAttr,
    SelfOid,
    VarRef,
)
from repro.algebra.scopes import BindingKind, Scope, VarBinding, derive_scope_tree
from repro.catalog.sample_db import build_catalog
from repro.errors import AlgebraError


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


def _eq(left, right):
    return Conjunction.of(Comparison(left, CompOp.EQ, right))


class TestScopeContainer:
    def test_duplicate_name_rejected(self):
        b = VarBinding("c", "City", BindingKind.OBJECT)
        with pytest.raises(AlgebraError):
            Scope.of(b, b)

    def test_merge_disjoint(self):
        a = Scope.of(VarBinding("c", "City", BindingKind.OBJECT))
        b = Scope.of(VarBinding("d", "Department", BindingKind.OBJECT))
        assert a.merge(b).names == {"c", "d"}

    def test_merge_overlap_rejected(self):
        a = Scope.of(VarBinding("c", "City", BindingKind.OBJECT))
        with pytest.raises(AlgebraError):
            a.merge(a)

    def test_object_names_excludes_refs(self):
        s = Scope.of(
            VarBinding("t", "Task", BindingKind.OBJECT),
            VarBinding("m", "Employee", BindingKind.REF),
        )
        assert s.object_names == {"t"}
        assert s.names == {"t", "m"}


class TestScopeRules:
    def test_get_binds_object(self, catalog):
        scope = derive_scope_tree(Get("Cities", "c"), catalog)
        assert scope.binding("c").type_name == "City"
        assert scope.binding("c").kind is BindingKind.OBJECT

    def test_mat_extends_scope(self, catalog):
        tree = Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor")
        scope = derive_scope_tree(tree, catalog)
        assert scope.binding("c.mayor").type_name == "Person"

    def test_mat_of_scalar_rejected(self, catalog):
        tree = Mat(Get("Cities", "c"), RefSource("c", "name"), "x")
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_mat_unknown_source_rejected(self, catalog):
        tree = Mat(Get("Cities", "c"), RefSource("z", "mayor"), "x")
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_mat_duplicate_out_rejected(self, catalog):
        tree = Mat(
            Mat(Get("Cities", "c"), RefSource("c", "mayor"), "m"),
            RefSource("c", "country"),
            "m",
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_unnest_binds_reference(self, catalog):
        tree = Unnest(Get("Tasks", "t"), "t", "team_members", "m")
        scope = derive_scope_tree(tree, catalog)
        assert scope.binding("m").kind is BindingKind.REF
        assert scope.binding("m").type_name == "Employee"

    def test_unnest_of_single_ref_rejected(self, catalog):
        tree = Unnest(Get("Cities", "c"), "c", "mayor", "m")
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_mat_of_unnest_ref(self, catalog):
        tree = Mat(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m"),
            RefSource("m", None),
            "e",
        )
        scope = derive_scope_tree(tree, catalog)
        assert scope.binding("e").kind is BindingKind.OBJECT
        assert scope.binding("e").type_name == "Employee"

    def test_bare_mat_of_object_rejected(self, catalog):
        tree = Mat(Get("Cities", "c"), RefSource("c", None), "e")
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)


class TestPredicateChecking:
    def test_select_over_unbound_var_rejected(self, catalog):
        pred = _eq(FieldRef("z", "name"), Const("x"))
        with pytest.raises(AlgebraError):
            derive_scope_tree(Select(Get("Cities", "c"), pred), catalog)

    def test_field_access_on_ref_binding_rejected(self, catalog):
        tree = Select(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m"),
            _eq(FieldRef("m", "name"), Const("Fred")),
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_varref_on_ref_binding_ok(self, catalog):
        tree = Join(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m"),
            Get("extent(Employee)", "e"),
            _eq(VarRef("m"), SelfOid("e")),
        )
        derive_scope_tree(tree, catalog)

    def test_varref_on_object_binding_rejected(self, catalog):
        tree = Select(Get("Cities", "c"), _eq(VarRef("c"), Const(1)))
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_fieldref_on_reference_attr_rejected(self, catalog):
        tree = Select(
            Get("Cities", "c"), _eq(FieldRef("c", "mayor"), Const(1))
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_refattr_on_scalar_rejected(self, catalog):
        tree = Select(
            Get("Cities", "c"), _eq(RefAttr("c", "name"), Const(1))
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_objectterm_in_predicate_rejected(self, catalog):
        from repro.algebra.predicates import ObjectTerm

        pred = Conjunction.of(
            Comparison(ObjectTerm("c"), CompOp.EQ, Const(1))
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(Select(Get("Cities", "c"), pred), catalog)


class TestJoinProjectSetOp:
    def test_join_merges_scopes(self, catalog):
        tree = Join(
            Get("Employees", "e"),
            Get("extent(Department)", "d"),
            _eq(RefAttr("e", "department"), SelfOid("d")),
        )
        assert derive_scope_tree(tree, catalog).names == {"e", "d"}

    def test_join_overlapping_vars_rejected(self, catalog):
        tree = Join(Get("Cities", "c"), Get("Cities", "c"), Conjunction.true())
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_project_empties_scope(self, catalog):
        tree = Project(
            Get("Cities", "c"),
            (ProjectItem("name", FieldRef("c", "name")),),
        )
        assert derive_scope_tree(tree, catalog).names == frozenset()

    def test_project_validates_items(self, catalog):
        tree = Project(
            Get("Cities", "c"), (ProjectItem("x", FieldRef("z", "name")),)
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_setop_requires_same_scope(self, catalog):
        tree = SetOp(
            SetOpKind.UNION, Get("Cities", "c"), Get("Capitals", "k")
        )
        with pytest.raises(AlgebraError):
            derive_scope_tree(tree, catalog)

    def test_setop_same_scope_ok(self, catalog):
        tree = SetOp(SetOpKind.UNION, Get("Cities", "c"), Get("Cities", "c"))
        # Same var over the same element type: scopes match exactly.
        assert derive_scope_tree(tree, catalog).names == {"c"}
