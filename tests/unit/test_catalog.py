"""Unit tests for the catalog (stats, indexes, path resolution, pages)."""

import pytest

from repro.catalog.catalog import Catalog, IndexDef, extent_name
from repro.catalog.sample_db import build_catalog, build_schema
from repro.catalog.statistics import CollectionStats
from repro.errors import CatalogError


@pytest.fixture()
def catalog() -> Catalog:
    return build_catalog()


class TestStats:
    def test_cardinality(self, catalog):
        assert catalog.cardinality("Cities") == 10_000
        assert catalog.cardinality(extent_name("Employee")) == 200_000

    def test_missing_stats_raises(self):
        cat = Catalog(build_schema())
        with pytest.raises(CatalogError):
            cat.cardinality("Cities")

    def test_pages_ceiling(self, catalog):
        # 10,000 cities at 200 bytes, 20 per 4 KB page -> 500 pages.
        assert catalog.pages("Cities") == 500

    def test_pages_minimum_one(self, catalog):
        cat = build_catalog()
        cat.set_stats("Capitals", CollectionStats(1))
        assert cat.pages("Capitals") == 1

    def test_type_population_with_extent(self, catalog):
        assert catalog.type_population("Department") == 1_000

    def test_type_population_without_extent_is_none(self, catalog):
        # Plant has neither extent nor named set: the paper's catalog
        # limitation that forces pessimistic assembly estimates.
        assert catalog.type_population("Plant") is None

    def test_attribute_stats(self, catalog):
        stats = catalog.stats("Tasks")
        assert stats.avg_set_size("team_members") == 8.0
        assert stats.distinct_values("time") == 1_000
        assert stats.distinct_values("missing") is None


class TestPathResolution:
    def test_multi_link_path(self, catalog):
        attrs = catalog.resolve_path(
            "Employee", ("department", "plant", "location")
        )
        assert [a.name for a in attrs] == ["department", "plant", "location"]
        assert attrs[-1].kind.name == "SCALAR"

    def test_scalar_mid_path_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.resolve_path("Employee", ("name", "length"))

    def test_unknown_link_rejected(self, catalog):
        with pytest.raises(Exception):
            catalog.resolve_path("Employee", ("boss",))


class TestIndexes:
    def test_add_and_find(self, catalog):
        ix = IndexDef("ix", "Cities", ("mayor", "name"), 5000)
        catalog.add_index(ix)
        assert catalog.find_index("Cities", ("mayor", "name")) is ix
        assert ix.is_path_index
        assert catalog.indexes_on("Cities") == (ix,)

    def test_find_missing_returns_none(self, catalog):
        assert catalog.find_index("Cities", ("name",)) is None

    def test_duplicate_name_rejected(self, catalog):
        catalog.add_index(IndexDef("ix", "Cities", ("name",), 10))
        with pytest.raises(CatalogError):
            catalog.add_index(IndexDef("ix", "Tasks", ("time",), 10))

    def test_path_must_end_scalar(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_index(IndexDef("bad", "Cities", ("mayor",), 10))

    def test_path_links_must_be_refs(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_index(
                IndexDef("bad", "Tasks", ("team_members", "name"), 10)
            )

    def test_drop_index(self, catalog):
        catalog.add_index(IndexDef("ix", "Cities", ("name",), 10))
        catalog.drop_index("ix")
        assert catalog.find_index("Cities", ("name",)) is None
        with pytest.raises(CatalogError):
            catalog.drop_index("ix")

    def test_empty_path_rejected(self):
        with pytest.raises(CatalogError):
            IndexDef("bad", "Cities", (), 10)

    def test_nonpositive_distinct_rejected(self):
        with pytest.raises(CatalogError):
            IndexDef("bad", "Cities", ("name",), 0)


class TestDescribe:
    def test_table1_rendering(self, catalog):
        text = catalog.describe()
        assert "Cities" in text
        assert "10000" in text  # set cardinality
        assert "200000" in text  # employee extent
        # Plant has no extent and no set.
        plant_line = next(l for l in text.splitlines() if l.startswith("Plant"))
        assert "No" in plant_line
