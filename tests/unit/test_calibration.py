"""Unit tests for the cost-model validator."""

import pytest

from repro.api import Database
from repro.optimizer.calibration import CostModelValidator


@pytest.fixture(scope="module")
def validator():
    db = Database.sample(scale=0.05)
    return CostModelValidator(db.store)


class TestMicroExperiments:
    def test_sequential_scan_tight(self, validator):
        row = validator.sequential_scan()
        assert 0.5 <= row.ratio <= 2.0

    def test_assembly_window_monotone_in_simulation(self, validator):
        w1 = validator.assembly(window=1)
        w8 = validator.assembly(window=8)
        w64 = validator.assembly(window=64)
        assert w64.simulated_io_s <= w8.simulated_io_s <= w1.simulated_io_s

    def test_bounded_assembly_formula_is_upper_boundish(self, validator):
        """The bounded formula may overestimate (it ignores intra-window
        hits) but must not underestimate by much."""
        row = validator.bounded_assembly()
        assert row.predicted_io_s >= row.simulated_io_s * 0.5

    def test_warm_start_exact(self, validator):
        row = validator.warm_start()
        assert row.ratio == pytest.approx(1.0, abs=0.25)

    def test_validate_all_covers_every_operator(self, validator):
        rows = validator.validate_all()
        names = {row.operation for row in rows}
        assert len(rows) == 7
        assert any("pointer join" in n for n in names)
        for row in rows:
            assert row.predicted_io_s > 0
            assert row.simulated_io_s > 0

    def test_ratio_degenerate_cases(self):
        from repro.optimizer.calibration import ValidationRow

        assert ValidationRow("x", 0.0, 0.0).ratio == 1.0
        assert ValidationRow("x", 1.0, 0.0).ratio == float("inf")
