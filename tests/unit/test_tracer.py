"""Unit tests for the span/event tracer (repro.obs.tracer)."""

from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer


class TestTracer:
    def test_event_recording(self):
        tracer = Tracer()
        tracer.event("rule", "mat-commute", group=3, new=True)
        tracer.event("enforcer", "assembly", var="c.mayor")
        assert len(tracer.events) == 2
        first = tracer.events[0]
        assert first.seq == 0
        assert first.category == "rule"
        assert first.get("group") == 3
        assert first.get("missing", "fallback") == "fallback"

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.event("rule", "anything", detail=1)
        tracer.warning("w", "message")
        with tracer.span("phase", "explore"):
            pass
        assert tracer.events == []

    def test_null_tracer_is_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event("rule", "x")
        assert NULL_TRACER.events == []

    def test_disabled_span_is_shared_instance(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a", "b") is tracer.span("c", "d")

    def test_span_measures_seconds(self):
        tracer = Tracer()
        with tracer.span("phase", "explore"):
            pass
        (event,) = tracer.events
        assert event.category == "phase"
        assert event.name == "explore"
        assert isinstance(event.get("seconds"), float)
        assert event.get("seconds") >= 0.0

    def test_warning_category(self):
        tracer = Tracer()
        tracer.warning("type-statistics", "skipping X", type="X")
        (event,) = tracer.events
        assert event.category == "warning"
        assert event.get("message") == "skipping X"

    def test_events_in_and_counts(self):
        tracer = Tracer()
        tracer.event("rule", "a")
        tracer.event("rule", "b")
        tracer.event("memo", "merge")
        assert [e.name for e in tracer.events_in("rule")] == ["a", "b"]
        assert tracer.counts() == {"rule": 2, "memo": 1}

    def test_format_lines(self):
        tracer = Tracer()
        tracer.event("prune", "hash-join", losing_cost=1.25, budget=1.0)
        line = tracer.format()
        assert "prune" in line
        assert "hash-join" in line
        assert "losing_cost=1.2500" in line

    def test_clear(self):
        tracer = Tracer()
        tracer.event("rule", "a")
        tracer.clear()
        assert tracer.events == []

    def test_event_is_immutable_record(self):
        event = TraceEvent(0, "rule", "x", (("k", 1),))
        assert event.get("k") == 1
        assert "rule" in event.format()
