"""Unit tests for the governor: context, faults, admission, spill."""

from __future__ import annotations

import threading

import pytest

from repro.engine import iterators
from repro.engine.tuples import Obj
from repro.errors import (
    AdmissionRejected,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
)
from repro.governor.admission import AdmissionController
from repro.governor.context import CHECK_INTERVAL_ROWS, QueryContext, governed
from repro.governor.faults import FaultInjector, FaultPlan
from repro.governor.spill import (
    approx_row_bytes,
    spill_hash_join,
    spill_sort_rows,
)
from repro.algebra.predicates import CompOp, Comparison, Conjunction, FieldRef


class TestQueryContext:
    def test_no_limits_never_fires(self):
        ctx = QueryContext()
        ctx.start()
        ctx.check()
        assert not ctx.deadline_exceeded()
        assert not ctx.search_expired()

    def test_deadline_raises_typed_timeout(self):
        ctx = QueryContext(timeout_ms=0.0)
        ctx.start()
        with pytest.raises(QueryTimeout):
            ctx.check()

    def test_cancel_raises_typed_cancelled(self):
        ctx = QueryContext()
        ctx.start()
        ctx.cancel()
        assert ctx.cancelled
        with pytest.raises(QueryCancelled):
            ctx.check()

    def test_search_budget_is_soft_and_separate(self):
        ctx = QueryContext(search_timeout_ms=0.0)
        ctx.begin_search()
        assert ctx.search_expired()
        ctx.check()  # soft: the overall query is NOT out of time

    def test_overall_deadline_also_expires_search(self):
        ctx = QueryContext(timeout_ms=0.0)
        ctx.begin_search()
        assert ctx.search_expired()

    def test_mark_degraded_accumulates(self):
        ctx = QueryContext()
        ctx.mark_degraded("search_timeout", fallback="memo-best")
        ctx.mark_degraded("index_corruption", index="ix")
        assert ctx.degraded == ["search_timeout", "index_corruption"]

    def test_governed_polls_at_batch_granularity(self):
        ctx = QueryContext()
        polls = []
        original = ctx.check
        ctx.check = lambda: polls.append(1) or original()  # type: ignore
        rows = [{"x": i} for i in range(CHECK_INTERVAL_ROWS * 2 + 1)]
        assert list(governed(iter(rows), ctx)) == rows
        # One poll up front plus one per full batch.
        assert len(polls) == 3

    def test_governed_cancel_stops_stream(self):
        ctx = QueryContext()

        def rows():
            for i in range(10_000):
                if i == 100:
                    ctx.cancel()
                yield {"x": i}

        out = governed(rows(), ctx)
        with pytest.raises(QueryCancelled):
            list(out)


class TestFaultInjector:
    def test_deterministic_in_seed(self):
        plan = FaultPlan(seed=42, read_error_prob=0.3)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        draws_a = [a.read_fails(i, 1) for i in range(200)]
        draws_b = [b.read_fails(i, 1) for i in range(200)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_backoff_is_capped_exponential_with_jitter(self):
        plan = FaultPlan(seed=0, backoff_base_ms=1.0, backoff_cap_ms=8.0)
        assert plan.backoff_for(1) == 1.0
        assert plan.backoff_for(4) == 8.0
        assert plan.backoff_for(10) == 8.0  # capped
        injector = FaultInjector(plan)
        for attempt in range(1, 8):
            wait = injector.backoff(0, attempt)
            ceiling = plan.backoff_for(attempt)
            assert 0.5 * ceiling <= wait <= ceiling
        assert injector.stats.backoff_ms > 0.0

    def test_index_corruption_is_sticky(self):
        plan = FaultPlan(seed=1, corrupt_index_prob=0.5)
        injector = FaultInjector(plan)
        first = {n: injector.index_corrupted(n) for n in "abcdefgh"}
        again = {n: injector.index_corrupted(n) for n in "abcdefgh"}
        assert first == again
        assert sorted(injector.stats.corrupt_indexes) == sorted(
            n for n, corrupt in first.items() if corrupt
        )

    def test_zero_probabilities_inject_nothing(self):
        injector = FaultInjector(FaultPlan(seed=3))
        assert not any(injector.read_fails(i, 1) for i in range(100))
        assert injector.latency_spike(0) == 0.0
        assert not injector.index_corrupted("ix")

    def test_chaos_preset(self):
        plan = FaultPlan.chaos(7, fault_rate=0.05)
        assert plan.seed == 7
        assert plan.read_error_prob == 0.05
        assert 0.0 < plan.corrupt_index_prob <= 0.05


class TestAdmissionController:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(2, max_wait_ms=10.0)
        with controller.admit():
            with controller.admit():
                assert controller.admitted == 2

    def test_rejects_typed_when_full(self):
        controller = AdmissionController(1, max_wait_ms=5.0)
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with controller.admit():
                entered.set()
                release.wait(timeout=10.0)

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        assert entered.wait(timeout=5.0)
        try:
            with pytest.raises(AdmissionRejected):
                with controller.admit():
                    pass
            assert controller.rejected == 1
        finally:
            release.set()
            thread.join(timeout=5.0)

    def test_slot_released_after_exit(self):
        controller = AdmissionController(1, max_wait_ms=5.0)
        with controller.admit():
            pass
        with controller.admit():  # would reject if the slot leaked
            pass


def _store(scale=0.02):
    from repro.api import Database

    return Database.sample(scale=scale).store


class TestSpill:
    def test_approx_row_bytes_is_deterministic_and_positive(self):
        row = {"a": 1, "b": "text", "c": Obj(oid=5, data={"x": 1})}
        assert approx_row_bytes(row) == approx_row_bytes(dict(row))
        assert approx_row_bytes(row) > 0

    def test_spill_sort_matches_in_memory_sort_exactly(self):
        store = _store()
        rows = [
            {"c": Obj(oid=i, data={"name": f"n{i % 7}", "pop": i})}
            for i in range(500)
        ]
        in_memory = list(
            iterators.sort_rows(iter(rows), "c", "name", True, ())
        )
        budget = sum(approx_row_bytes(r) for r in rows) // 10
        before = store.buffer.stats.spill_writes
        spilled = list(
            spill_sort_rows(
                store, iter(rows), "c", "name", True, (),
                budget_bytes=budget,
            )
        )
        assert spilled == in_memory  # byte-identical, ties included
        assert store.buffer.stats.spill_writes > before

    def test_spill_sort_small_input_stays_in_memory(self):
        store = _store()
        rows = [{"c": Obj(oid=i, data={"name": i})} for i in range(5)]
        before = store.buffer.stats.spill_writes
        out = list(
            spill_sort_rows(
                store, iter(rows), "c", "name", True, (),
                budget_bytes=1 << 20,
            )
        )
        assert len(out) == 5
        assert store.buffer.stats.spill_writes == before

    def test_spill_hash_join_matches_in_memory_exactly(self):
        store = _store()
        build = [{"d": Obj(oid=i, data={"k": i % 11})} for i in range(120)]
        probe = [
            {"e": Obj(oid=1000 + i, data={"k": i % 11})} for i in range(300)
        ]
        predicate = Conjunction.of(
            Comparison(FieldRef("d", "k"), CompOp.EQ, FieldRef("e", "k"))
        )
        in_memory = list(
            iterators.hash_join(iter(build), iter(probe), predicate)
        )
        budget = sum(approx_row_bytes(r) for r in build) // 10
        before = store.buffer.stats.spill_writes
        spilled = list(
            spill_hash_join(
                store, iter(build), iter(probe), predicate,
                budget_bytes=budget,
            )
        )
        assert spilled == in_memory
        assert store.buffer.stats.spill_writes > before

    def test_zero_budget_raises_typed_error(self):
        store = _store()
        rows = [{"c": Obj(oid=i, data={"name": i})} for i in range(3)]
        with pytest.raises(MemoryBudgetExceeded):
            list(
                spill_sort_rows(
                    store, iter(rows), "c", "name", True, (),
                    budget_bytes=0,
                )
            )
