"""Unit tests for the fuzzer's generators, shrinker, and corpus format."""

import random

from repro.fuzz import (
    PredicateSpec,
    QuerySpec,
    WorldSpec,
    build_database,
    case_from_json,
    case_to_json,
    random_query,
    random_world,
    save_repro,
    load_repro,
    shrink_case,
)
from repro.fuzz.worldgen import MAX_COUNT


class TestWorldGeneration:
    def test_deterministic_per_seed(self):
        a = random_world(random.Random("w:1"))
        b = random_world(random.Random("w:1"))
        assert a == b

    def test_distinct_across_seeds(self):
        worlds = {random_world(random.Random(f"w:{i}")).to_dict().__str__()
                  for i in range(8)}
        assert len(worlds) > 1

    def test_populations_bounded(self):
        for i in range(10):
            world = random_world(random.Random(i))
            assert all(0 < t.count <= MAX_COUNT for t in world.types)

    def test_json_round_trip(self):
        world = random_world(random.Random("rt"))
        assert WorldSpec.from_dict(world.to_dict()) == world

    def test_builds_running_database(self):
        world = random_world(random.Random("db"))
        db = build_database(world)
        collection, _ = world.collections()[0]
        assert len(db.query(f"SELECT * FROM x IN {collection}").rows) >= 0


class TestQueryGeneration:
    def test_deterministic_per_seed(self):
        world = random_world(random.Random("w"))
        a = random_query(random.Random("q:1"), world)
        b = random_query(random.Random("q:1"), world)
        assert a == b and a.render() == b.render()

    def test_json_round_trip(self):
        world = random_world(random.Random("w"))
        for i in range(20):
            query = random_query(random.Random(i), world)
            again = QuerySpec.from_dict(query.to_dict())
            assert again == query
            assert again.render() == query.render()

    def test_reference_accepts_generated_queries(self):
        world = random_world(random.Random("accept"))
        db = build_database(world)
        accepted = 0
        for i in range(15):
            query = random_query(random.Random(i), world)
            db.query(query.render(), use_cache=False)
            accepted += 1
        assert accepted == 15


class TestShrinker:
    def test_drops_irrelevant_predicates(self):
        world = random_world(random.Random("shrink"))
        query = random_query(random.Random("shrink-q"), world)
        target = PredicateSpec(("x", "s0"), "==", 1)
        query = QuerySpec(
            ranges=query.ranges[:1],
            predicates=(PredicateSpec(("x", "s1"), "<", 3), target),
        )
        # Synthetic oracle: the case "fails" while the target survives.
        world2, shrunk = shrink_case(
            world, query, lambda w, q: target in q.predicates
        )
        assert shrunk.predicates == (target,)
        assert shrunk.order_path is None
        # World shrinking keeps only types the query still touches.
        assert len(world2.types) <= len(world.types)

    def test_result_still_fails(self):
        world = random_world(random.Random("sf"))
        query = random_query(random.Random("sf-q"), world)
        fails = lambda w, q: len(w.types) > 0
        w2, q2 = shrink_case(world, query, fails)
        assert fails(w2, q2)


class TestCorpusFormat:
    def test_save_load_round_trip(self, tmp_path):
        world = random_world(random.Random("c"))
        query = random_query(random.Random("c-q"), world)
        path = save_repro(tmp_path, world, query, note="unit test")
        w2, q2 = load_repro(path)
        assert (w2, q2) == (world, query)

    def test_content_hashed_idempotent(self, tmp_path):
        world = random_world(random.Random("c"))
        query = random_query(random.Random("c-q"), world)
        first = save_repro(tmp_path, world, query, note="one")
        second = save_repro(tmp_path, world, query, note="two")
        assert first == second  # re-finding the same bug rewrites in place
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_document_carries_readable_query(self):
        world = random_world(random.Random("c"))
        query = random_query(random.Random("c-q"), world)
        document = case_to_json(world, query, note="n")
        assert document["query_text"] == query.render()
        assert case_from_json(document) == (world, query)
