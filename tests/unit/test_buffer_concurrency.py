"""Concurrency stress tests for the thread-safe storage layer.

The invariants the exchange operator depends on:

* the buffer pool's global counters are exact under contention —
  ``hits + misses == total page requests`` with no lost updates;
* the frame table never exceeds capacity and never leaks a frame;
* per-thread I/O scopes attribute each thread's traffic to its own
  collectors, never to another thread's;
* the plan cache survives concurrent lookups/stores from many
  ``Database.query`` callers sharing one cache.
"""

import threading

from repro.api import Database
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskSimulator

from tests.conftest import SCALE

THREADS = 8
REQUESTS_PER_THREAD = 2_000


def hammer(pool: BufferPool, thread_index: int, span: int) -> None:
    for i in range(REQUESTS_PER_THREAD):
        pool.read_page((thread_index * 7 + i * 13) % span)


class TestBufferPoolUnderContention:
    def test_counters_exact_and_no_frame_leaked(self):
        disk = DiskSimulator()
        span = 256
        disk.extend_span(span)
        pool = BufferPool(disk, capacity=64)
        threads = [
            threading.Thread(target=hammer, args=(pool, t, span))
            for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = THREADS * REQUESTS_PER_THREAD
        assert pool.stats.hits + pool.stats.misses == total
        assert pool.resident_pages <= pool.capacity
        # Every miss went through the disk simulator exactly once.
        assert disk.stats.page_reads == pool.stats.misses

    def test_per_thread_scopes_attribute_to_own_collector(self):
        class Scope:
            def __init__(self):
                self.hits = 0
                self.misses = 0

        disk = DiskSimulator()
        disk.extend_span(64)
        pool = BufferPool(disk, capacity=64)
        scopes = [Scope() for _ in range(THREADS)]

        def worker(index: int) -> None:
            pool.push_io_scope(scopes[index])
            try:
                for i in range(500):
                    pool.read_page(i % 64)
            finally:
                pool.pop_io_scope()

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for scope in scopes:
            assert scope.hits + scope.misses == 500
        assert sum(s.hits + s.misses for s in scopes) == THREADS * 500
        assert pool.io_scope_depth == 0

    def test_latency_scale_sleeps_only_on_misses(self):
        disk = DiskSimulator()
        disk.extend_span(4)
        pool = BufferPool(disk, capacity=4, latency_scale=0.0001)
        for page in range(4):
            pool.read_page(page)
        assert pool.stats.misses == 4
        # Warm rereads: all hits, no sleeping path taken (just correctness
        # of the counters; timing is not asserted).
        for page in range(4):
            pool.read_page(page)
        assert pool.stats.hits == 4


class TestConcurrentQueries:
    def test_threads_share_one_plan_cache(self):
        db = Database.sample(scale=SCALE)
        query = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "{0}"'
        names = ["Joe", "Fred", "Ann", "Sue"]
        errors: list[BaseException] = []
        results: list[int] = []
        lock = threading.Lock()

        def run(name: str) -> None:
            try:
                for _ in range(5):
                    result = db.query(query.format(name))
                    with lock:
                        results.append(len(result.rows))
            except BaseException as exc:  # noqa: BLE001 - worker thread:
                # any crash must surface in the main thread's assertion
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(names[t % len(names)],))
            for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(results) == THREADS * 5
        stats = db.plan_cache.stats
        # Every lookup was accounted: hits + misses == lookups, and the
        # shape was optimized at least once but far fewer times than the
        # total query count (the cache actually shared work).
        assert stats.lookups == THREADS * 5
        assert stats.hits + stats.misses == stats.lookups
        assert 1 <= stats.stores < THREADS * 5
