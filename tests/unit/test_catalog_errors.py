"""Catalog error handling: narrow catches, traced warnings, loud bugs.

``Catalog.collection`` translates a schema "no such collection" into a
:class:`repro.errors.CatalogError` and (when a tracer is attached)
records a warning event.  Crucially it must catch *only*
:class:`~repro.errors.SchemaError` — a genuine programming error inside
the schema layer has to propagate, not get laundered into a polite
"unknown collection" message.
"""

import pytest

from repro.api import Database
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema, TypeDef, scalar
from repro.errors import CatalogError
from repro.obs.tracer import NULL_TRACER, Tracer


def _catalog() -> Catalog:
    schema = Schema()
    schema.add_type(
        TypeDef("Person", 100, (scalar("name", "str"),)), with_extent=True
    )
    return Catalog(schema)


class TestUnknownCollection:
    def test_raises_catalog_error(self):
        with pytest.raises(CatalogError, match="unknown collection"):
            _catalog().collection("Nope")

    def test_chains_the_schema_error(self):
        try:
            _catalog().collection("Nope")
        except CatalogError as exc:
            from repro.errors import SchemaError

            assert isinstance(exc.__cause__, SchemaError)

    def test_traced_lookup_records_a_warning(self):
        catalog = _catalog()
        catalog.tracer = Tracer()
        with pytest.raises(CatalogError):
            catalog.collection("Nope")
        (event,) = catalog.tracer.events_in("warning")
        assert event.name == "unknown-collection"
        assert ("collection", "Nope") in event.detail

    def test_null_tracer_records_nothing(self):
        catalog = _catalog()
        assert catalog.tracer is NULL_TRACER
        with pytest.raises(CatalogError):
            catalog.collection("Nope")
        assert catalog.tracer.events == []


class TestProgrammingErrorsPropagate:
    def test_runtime_error_is_not_swallowed(self, monkeypatch):
        catalog = _catalog()

        def boom(name):
            raise RuntimeError("schema layer bug")

        monkeypatch.setattr(catalog._schema, "collection", boom)
        with pytest.raises(RuntimeError, match="schema layer bug"):
            catalog.collection("Persons")

    def test_type_error_is_not_swallowed(self, monkeypatch):
        catalog = _catalog()
        monkeypatch.setattr(
            catalog._schema,
            "collection",
            lambda name: (_ for _ in ()).throw(TypeError("bad call")),
        )
        with pytest.raises(TypeError):
            catalog.collection("extent(Person)")


class TestDatabaseTracerWiring:
    def test_assigning_db_tracer_reaches_the_catalog(self):
        db = Database(_catalog())
        tracer = Tracer()
        db.tracer = tracer
        assert db.catalog.tracer is tracer
        with pytest.raises(CatalogError):
            db.catalog.collection("Nope")
        assert tracer.events_in("warning")

    def test_assigning_none_restores_the_null_tracer(self):
        db = Database(_catalog())
        db.tracer = Tracer()
        db.tracer = None
        assert db.tracer is NULL_TRACER
        assert db.catalog.tracer is NULL_TRACER
