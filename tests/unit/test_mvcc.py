"""Storage-level MVCC semantics: snapshots, conflicts, membership.

These tests drive :mod:`repro.storage.mvcc` through the ObjectStore
surface directly (no optimizer), pinning the invariants the serving
tier rests on: snapshot stability, first-committer-wins, tombstones,
membership versioning, overflow-page allocation for post-seal inserts,
and the untouched-store fast path that keeps read-only behavior
byte-identical to the pre-DML engine.
"""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema, TypeDef, scalar
from repro.errors import StorageError, TransactionError, WriteConflict
from repro.storage.datagen import generate_store
from repro.storage.mvcc import SnapshotView
from repro.storage.store import ObjectStore


def small_store() -> ObjectStore:
    """A tiny sealed store: one type, extent plus named set."""
    schema = Schema()
    schema.add_type(
        TypeDef(
            "Item",
            object_size=50,
            attributes=(scalar("n", "int"), scalar("label", "str")),
        ),
        with_extent=True,
    )
    schema.add_named_set("Items", "Item")
    catalog = Catalog(schema)
    store = ObjectStore(catalog)
    store.create_segment("Item")
    oids = [
        store.insert("Item", {"n": i, "label": f"item{i}"}) for i in range(8)
    ]
    store.register_collection("Items", oids[:5])
    store.seal()
    return store


def test_store_is_its_own_view_until_first_commit():
    store = small_store()
    assert store.view() is store  # byte-identical fast path
    txn = store.begin()
    txn.rollback()
    assert store.view() is store  # rolled-back writes leave it clean
    with store.begin() as txn:
        oid = next(iter(store.collection_oids("Items")))
        txn.update(oid, {"n": 99, "label": "mut"})
    assert isinstance(store.view(), SnapshotView)


def test_snapshot_stability_across_commits():
    store = small_store()
    reader = store.view(snapshot=store.mvcc.current_csn)
    before = {oid: store.peek(oid)["n"] for oid in store.collection_oids("Items")}
    with store.begin() as txn:
        for oid in list(before):
            txn.update(oid, {"n": -1, "label": "x"})
    # The pinned view still sees the old values; a fresh view sees new.
    reader = store.view(snapshot=0)
    for oid, n in before.items():
        assert reader.peek(oid)["n"] == n
    fresh = store.view()
    assert all(fresh.peek(oid)["n"] == -1 for oid in before)


def test_first_committer_wins():
    store = small_store()
    oid = store.collection_oids("Items")[0]
    t1 = store.begin()
    t2 = store.begin()
    t1.update(oid, {"n": 1, "label": "t1"})
    t1.commit()
    with pytest.raises(WriteConflict) as info:
        t2.update(oid, {"n": 2, "label": "t2"})
        t2.commit()
    assert info.value.oid == oid
    assert t2.status == "rolled-back"
    assert store.peek(oid)["label"] == "t1"


def test_write_after_finish_is_typed_error():
    store = small_store()
    txn = store.begin()
    txn.commit()
    with pytest.raises(TransactionError):
        txn.insert("Items", {"n": 0, "label": ""})


def test_insert_into_named_set_joins_extent():
    store = small_store()
    with store.begin() as txn:
        new = txn.insert("Items", {"n": 100, "label": "new"})
    assert new in store.collection_oids("Items")
    assert new in store.collection_oids("extent(Item)")
    # Extent-only inserts do not join named sets.
    with store.begin() as txn:
        loner = txn.insert("extent(Item)", {"n": 101, "label": "loner"})
    assert loner in store.collection_oids("extent(Item)")
    assert loner not in store.collection_oids("Items")


def test_delete_leaves_tombstone_and_membership():
    store = small_store()
    victim = store.collection_oids("Items")[2]
    count = len(store.collection_oids("Items"))
    snapshot = store.view(snapshot=store.mvcc.current_csn)
    with store.begin() as txn:
        txn.delete(victim)
    assert victim not in store.collection_oids("Items")
    assert len(store.collection_oids("Items")) == count - 1
    with pytest.raises(StorageError):
        store.peek(victim)
    # The pinned snapshot still sees the victim.
    snapshot = store.view(snapshot=0)
    assert victim in snapshot.collection_oids("Items")
    assert snapshot.peek(victim)["n"] is not None


def test_read_your_own_writes_and_isolation():
    store = small_store()
    txn = store.begin()
    new = txn.insert("Items", {"n": 7, "label": "mine"})
    mine = store.view(txn=txn)
    theirs = store.view()
    assert new in mine.collection_oids("Items")
    assert mine.peek(new)["label"] == "mine"
    assert theirs is store  # nothing committed yet: still clean
    assert new not in store.collection_oids("Items")
    txn.rollback()
    assert new not in store.collection_oids("Items")


def test_overflow_pages_do_not_collide_with_base_segments():
    store = small_store()
    base_pages = {store.page_of(oid) for oid in store.collection_oids("extent(Item)")}
    with store.begin() as txn:
        fresh = [
            txn.insert("Items", {"n": i, "label": "x"}) for i in range(10)
        ]
    fresh_pages = {store.page_of(oid) for oid in fresh}
    assert not (base_pages & fresh_pages)


def test_data_version_advances_per_collection():
    store = small_store()
    mvcc = store.mvcc
    now = mvcc.current_csn
    assert mvcc.data_version_at("Items", now) == 0
    with store.begin() as txn:
        txn.insert("Items", {"n": 1, "label": "a"})
    v1 = mvcc.data_version_at("Items", mvcc.current_csn)
    assert v1 == 1
    with store.begin() as txn:
        txn.insert("extent(Item)", {"n": 2, "label": "b"})
    # Items untouched by the second commit; extent advanced twice.
    assert mvcc.data_version_at("Items", mvcc.current_csn) == v1
    assert mvcc.data_version_at("extent(Item)", mvcc.current_csn) == 2
    # Earlier snapshots keep their earlier generation.
    assert mvcc.data_version_at("Items", 0) == 0


def test_commit_rolls_everything_or_nothing():
    store = small_store()
    items = store.collection_oids("Items")
    t1 = store.begin()
    t2 = store.begin()
    t1.update(items[0], {"n": 1, "label": "w"})
    t2.update(items[1], {"n": 2, "label": "x"})
    t2.update(items[0], {"n": 3, "label": "y"})  # will conflict
    t1.commit()
    with pytest.raises(WriteConflict):
        t2.commit()
    # None of t2's writes are visible — not even the unconflicted one.
    assert store.peek(items[1])["n"] == 1
    assert store.peek(items[0])["label"] == "w"


def test_snapshot_view_scan_matches_collection_oids():
    store = small_store()
    with store.begin() as txn:
        txn.insert("Items", {"n": 50, "label": "scanned"})
    view = store.view()
    scanned = {oid for oid, _ in view.scan("Items")}
    assert scanned == set(view.collection_oids("Items"))
    bounds = view.partition_bounds("Items", 2)
    via_partitions = set()
    for index in range(len(bounds)):
        via_partitions |= {
            oid for oid, _ in view.scan_partition("Items", index, 2)
        }
    assert via_partitions == scanned


def test_sample_store_fast_path_untouched():
    """The generated sample world never allocates MVCC structures."""
    store = generate_store()
    assert not store.mvcc.dirty
    assert store.view() is store


def test_rollback_empties_write_buffers():
    store = small_store()
    target = store.collection_oids("Items")[0]
    txn = store.begin()
    txn.insert("Items", {"n": 100, "label": "ghost"})
    txn.update(target, {"n": -1, "label": "ghost"})
    txn.rollback()
    assert txn.writes == 0
    # Even a view wrongly kept pointing at the dead transaction shows
    # only committed state — discarded writes never leak into reads.
    view = SnapshotView(store, store.mvcc.current_csn, txn)
    assert view.peek(target)["n"] == 0
    assert len(view.collection_oids("Items")) == 5


def test_eager_conflict_discards_partial_writes():
    """A write-write conflict mid-transaction dooms it *and* empties it.

    The regression: rollback used to flip only the status, so a session
    holding the doomed transaction kept reading the buffered writes of
    the statement that conflicted partway through.
    """
    store = small_store()
    oid_a, oid_b = store.collection_oids("Items")[:2]
    loser = store.begin()
    loser.update(oid_a, {"n": 111, "label": "partial"})
    winner = store.begin()
    winner.update(oid_b, {"n": 7, "label": "win"})
    winner.commit()
    with pytest.raises(WriteConflict):
        loser.update(oid_b, {"n": 8, "label": "lose"})
    assert loser.status == "rolled-back"
    assert loser.writes == 0
    view = SnapshotView(store, store.mvcc.current_csn, loser)
    assert view.peek(oid_a)["n"] == 0  # the buffered 111 is gone


def test_rolled_back_insert_does_not_grow_disk_span():
    store = small_store()
    span_before = store.disk.span_pages
    txn = store.begin()
    txn.insert("Items", {"n": 50, "label": "gone"})
    txn.rollback()
    assert store.disk.span_pages == span_before
    with store.begin() as kept:
        kept.insert("Items", {"n": 51, "label": "kept"})
    assert store.disk.span_pages > span_before
