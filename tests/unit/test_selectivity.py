"""Unit tests for selectivity estimation."""

import pytest

from repro.algebra.operators import Get, Mat, RefSource, Unnest
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
    VarRef,
)
from repro.catalog.sample_db import (
    build_catalog,
    index_cities_mayor_name,
    index_employees_name,
)
from repro.catalog.statistics import DEFAULT_SELECTIVITY
from repro.optimizer.logical_props import build_query_vars
from repro.optimizer.selectivity import (
    DEFAULT_RANGE_SELECTIVITY,
    SelectivityModel,
)


def _model(with_indexes: bool = True):
    catalog = build_catalog()
    if with_indexes:
        catalog.add_index(index_cities_mayor_name())
        catalog.add_index(index_employees_name())
    tree = Mat(
        Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
        RefSource("c", "country"),
        "c.country",
    )
    qvars = build_query_vars(tree, catalog)
    return SelectivityModel(catalog, qvars), catalog


class TestFieldVsConst:
    def test_default_ten_percent(self):
        """The paper's rule: no index -> 10%."""
        model, _ = _model(with_indexes=False)
        comp = Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        assert model.comparison(comp) == DEFAULT_SELECTIVITY

    def test_path_index_assists(self):
        """With the Cities path index: 1/distinct -> 2 of 10,000 cities."""
        model, _ = _model()
        comp = Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        assert model.comparison(comp) == pytest.approx(1 / 5000)

    def test_const_on_left_same_estimate(self):
        model, _ = _model()
        a = Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        b = Comparison(Const("Joe"), CompOp.EQ, FieldRef("c.mayor", "name"))
        assert model.comparison(a) == model.comparison(b)

    def test_extent_index_assists_via_type(self):
        """An attribute index on the variable's type extent also assists."""
        catalog = build_catalog()
        catalog.add_index(index_employees_name())
        tree = Mat(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m"),
            RefSource("m", None),
            "e",
        )
        model = SelectivityModel(catalog, build_query_vars(tree, catalog))
        comp = Comparison(FieldRef("e", "name"), CompOp.EQ, Const("Fred"))
        assert model.comparison(comp) == pytest.approx(1 / 500)

    def test_inequality_complement(self):
        model, _ = _model()
        comp = Comparison(FieldRef("c.mayor", "name"), CompOp.NE, Const("Joe"))
        assert model.comparison(comp) == pytest.approx(1 - 1 / 5000)

    def test_range_default(self):
        model, _ = _model(with_indexes=False)
        comp = Comparison(FieldRef("c.mayor", "age"), CompOp.GE, Const(30))
        assert model.comparison(comp) == DEFAULT_RANGE_SELECTIVITY


class TestReferenceEquality:
    def test_ref_vs_self_uses_population(self):
        """ref == self selectivity = 1/population, making Mat and its Join
        rewriting estimate the same cardinality."""
        model, catalog = _model()
        comp = Comparison(
            RefAttr("c", "country"), CompOp.EQ, SelfOid("c.country")
        )
        # c.country originates from a Mat, so the Country population rules.
        assert model.comparison(comp) == pytest.approx(1 / 160)

    def test_user_scanned_side_uses_collection(self):
        catalog = build_catalog()
        tree = Get("extent(Department)", "d")
        model = SelectivityModel(catalog, build_query_vars(tree, catalog))
        comp = Comparison(RefAttr("e", "department"), CompOp.EQ, SelfOid("d"))
        assert model.comparison(comp) == pytest.approx(1 / 1000)

    def test_varref_vs_self(self):
        catalog = build_catalog()
        tree = Get("extent(Employee)", "e")
        model = SelectivityModel(catalog, build_query_vars(tree, catalog))
        comp = Comparison(VarRef("m"), CompOp.EQ, SelfOid("e"))
        assert model.comparison(comp) == pytest.approx(1 / 200_000)


class TestConjunctions:
    def test_product_rule(self):
        model, _ = _model(with_indexes=False)
        a = Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        b = Comparison(FieldRef("c.mayor", "age"), CompOp.EQ, Const(30))
        conj = Conjunction.of(a, b)
        assert model.predicate(conj) == pytest.approx(
            DEFAULT_SELECTIVITY**2
        )

    def test_true_predicate_is_one(self):
        model, _ = _model()
        assert model.predicate(Conjunction.true()) == 1.0


class TestFanout:
    def test_catalog_set_size(self):
        catalog = build_catalog()
        tree = Get("Tasks", "t")
        model = SelectivityModel(catalog, build_query_vars(tree, catalog))
        assert model.unnest_fanout("t", "team_members") == 8.0

    def test_default_fanout_without_stats(self):
        catalog = build_catalog()
        tree = Get("Capitals", "k")
        model = SelectivityModel(catalog, build_query_vars(tree, catalog))
        from repro.optimizer.selectivity import DEFAULT_UNNEST_FANOUT

        assert model.unnest_fanout("k", "anything") == DEFAULT_UNNEST_FANOUT


class TestSubUnitEstimates:
    """Sub-1-row estimates must survive (the 1-row floors hid empties)."""

    def test_empty_referenced_collection_is_zero(self):
        """ref == self against an *empty* collection can match nothing.

        Pre-fix, a ``max(1, cardinality)`` floor turned the estimate
        into selectivity 1.0 — every row "matches" a collection that
        holds no objects at all.
        """
        from repro.catalog.statistics import CollectionStats

        catalog = build_catalog()
        catalog.set_stats("extent(Department)", CollectionStats(0))
        tree = Get("extent(Department)", "d")
        model = SelectivityModel(catalog, build_query_vars(tree, catalog))
        comp = Comparison(RefAttr("e", "department"), CompOp.EQ, SelfOid("d"))
        assert model.comparison(comp) == 0.0

    def test_grouping_empty_input_estimates_zero_groups(self):
        """Zero input rows group into zero groups, not a floored 1."""
        from repro.algebra.operators import ProjectItem

        model, _ = _model()
        keys = (ProjectItem("g", FieldRef("c", "name")),)
        assert model.grouping_cardinality(keys, 0.0) == 0.0

    def test_grouping_near_empty_input_stays_sub_one(self):
        """A 0.5-row input yields a sub-1 group estimate (pre-fix: 1.0)."""
        from repro.algebra.operators import ProjectItem

        model, _ = _model()
        keys = (ProjectItem("g", FieldRef("c", "name")),)
        groups = model.grouping_cardinality(keys, 0.5)
        assert 0.0 < groups < 1.0

    def test_group_fraction_fallback_is_unfloored(self):
        """The 10% no-stats fallback may estimate under one group."""
        from repro.algebra.operators import ProjectItem

        model, _ = _model(with_indexes=False)
        keys = (ProjectItem("g", FieldRef("c.mayor", "age")),)
        groups = model.grouping_cardinality(keys, 4.0)
        assert groups == pytest.approx(0.4)
