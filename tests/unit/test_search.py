"""Unit tests for the search engine: exploration, goal-direction, enforcers,
memoization, and branch-and-bound."""

import math

import pytest

from repro.algebra.operators import Get, Mat, RefSource, Select
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
)
from repro.catalog.sample_db import build_catalog, index_cities_mayor_name
from repro.optimizer import config as C
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizeContext
from repro.optimizer.cost import CostModel
from repro.optimizer.logical_props import build_query_vars
from repro.optimizer.memo import Memo
from repro.optimizer.physical_props import PhysProps
from repro.optimizer.plans import AssemblyNode, IndexScanNode
from repro.optimizer.search import SearchEngine
from repro.optimizer.selectivity import SelectivityModel


def _query2_tree():
    return Select(
        Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
        Conjunction.of(
            Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        ),
    )


def _engine(tree, config=None, with_index=True):
    catalog = build_catalog()
    if with_index:
        catalog.add_index(index_cities_mayor_name())
    config = config or OptimizerConfig()
    qvars = build_query_vars(tree, catalog)
    selectivity = SelectivityModel(catalog, qvars)
    memo = Memo(catalog, selectivity)
    gid = memo.insert_expression(tree)
    ctx = OptimizeContext(
        memo=memo,
        catalog=catalog,
        cost_model=CostModel(config.cost),
        selectivity=selectivity,
        query_vars=qvars,
        config=config,
    )
    engine = SearchEngine(ctx)
    engine.explore()
    return engine, gid


class TestGoalDirectedSearch:
    def test_weak_goal_gets_index_scan(self):
        """Requiring only {c}: the collapse rule's plan wins (Figure 8)."""
        engine, gid = _engine(_query2_tree())
        plan = engine.best_plan(gid, PhysProps.of("c"))
        assert isinstance(plan, IndexScanNode)

    def test_strong_goal_adds_enforcer(self):
        """Requiring {c, c.mayor}: the assembly enforcer tops the index
        scan — the paper's Query 3 discovery (Figure 10)."""
        engine, gid = _engine(_query2_tree())
        plan = engine.best_plan(gid, PhysProps.of("c", "c.mayor"))
        assert isinstance(plan, AssemblyNode)
        assert plan.enforcer
        assert isinstance(plan.children[0], IndexScanNode)
        assert plan.delivered.satisfies(PhysProps.of("c", "c.mayor"))

    def test_goals_memoized_separately(self):
        engine, gid = _engine(_query2_tree())
        weak = engine.best_plan(gid, PhysProps.of("c"))
        strong = engine.best_plan(gid, PhysProps.of("c", "c.mayor"))
        assert weak.total_cost.total < strong.total_cost.total

    def test_unsatisfiable_goal_returns_none(self):
        engine, gid = _engine(_query2_tree())
        assert engine.optimize(gid, PhysProps.of("nonexistent")) is None

    def test_enforcer_disabled_changes_plan(self):
        """Without the enforcer, the strong goal falls back to the filter
        plan (and never discovers Figure 10)."""
        engine, gid = _engine(
            _query2_tree(), OptimizerConfig().without(C.ASSEMBLY_ENFORCER)
        )
        plan = engine.best_plan(gid, PhysProps.of("c", "c.mayor"))
        assert not any(
            isinstance(node, AssemblyNode) and node.enforcer
            for node in plan.walk()
        )
        assert plan.delivered.satisfies(PhysProps.of("c", "c.mayor"))


class TestMemoizationAndBounds:
    def test_winner_cached(self):
        engine, gid = _engine(_query2_tree())
        engine.best_plan(gid, PhysProps.of("c"))
        tasks_before = engine.stats.optimization_tasks
        engine.best_plan(gid, PhysProps.of("c"))
        assert engine.stats.optimization_tasks == tasks_before

    def test_limit_prunes(self):
        engine, gid = _engine(_query2_tree())
        assert engine.optimize(gid, PhysProps.of("c"), limit=1e-9) is None

    def test_relimit_after_failed_search(self):
        engine, gid = _engine(_query2_tree())
        assert engine.optimize(gid, PhysProps.of("c"), limit=1e-9) is None
        plan = engine.optimize(gid, PhysProps.of("c"), limit=math.inf)
        assert plan is not None

    def test_pruning_preserves_optimality(self):
        pruned, gid1 = _engine(_query2_tree(), OptimizerConfig())
        from dataclasses import replace

        exhaustive, gid2 = _engine(
            _query2_tree(), replace(OptimizerConfig(), prune=False)
        )
        a = pruned.best_plan(gid1, PhysProps.of("c"))
        b = exhaustive.best_plan(gid2, PhysProps.of("c"))
        assert a.total_cost.total == pytest.approx(b.total_cost.total)


class TestHeuristics:
    def test_candidate_cap_reduces_effort(self):
        from dataclasses import replace

        exhaustive, gid1 = _engine(_query2_tree())
        exhaustive.best_plan(gid1, PhysProps.of("c"))
        greedy, gid2 = _engine(
            _query2_tree(),
            replace(OptimizerConfig(), candidate_cap=1),
        )
        greedy.best_plan(gid2, PhysProps.of("c"))
        assert (
            greedy.stats.candidates_costed
            <= exhaustive.stats.candidates_costed
        )

    def test_candidate_cap_still_produces_valid_plan(self):
        from dataclasses import replace

        engine, gid = _engine(
            _query2_tree(), replace(OptimizerConfig(), candidate_cap=1)
        )
        plan = engine.best_plan(gid, PhysProps.of("c"))
        assert plan.delivered.satisfies(PhysProps.of("c"))

    def test_prune_factor_never_beats_exhaustive(self):
        from dataclasses import replace

        exhaustive, gid1 = _engine(_query2_tree())
        optimal = exhaustive.best_plan(gid1, PhysProps.of("c"))
        pruned, gid2 = _engine(
            _query2_tree(), replace(OptimizerConfig(), prune_factor=0.5)
        )
        plan = pruned.best_plan(gid2, PhysProps.of("c"))
        assert plan.total_cost.total >= optimal.total_cost.total


class TestEffortCounters:
    def test_disabling_rules_reduces_effort(self):
        full, gid1 = _engine(_query2_tree())
        full.best_plan(gid1, PhysProps.of("c"))
        crippled, gid2 = _engine(
            _query2_tree(),
            OptimizerConfig().without(
                C.COLLAPSE_TO_INDEX_SCAN, C.MAT_TO_JOIN, C.MAT_PAST_JOIN
            ),
        )
        crippled.best_plan(gid2, PhysProps.of("c"))
        assert crippled.stats.total_effort < full.stats.total_effort

    def test_exploration_reaches_fixpoint(self):
        engine, _ = _engine(_query2_tree())
        assert engine.stats.exploration_rounds >= 2
        assert engine.stats.mexprs_generated > 3
