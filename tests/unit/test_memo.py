"""Unit tests for the memo: dedup, groups, merging, property derivation."""

import pytest

from repro.algebra.operators import (
    Get,
    Join,
    Mat,
    RefSource,
    Select,
    SetOp,
    SetOpKind,
    Unnest,
)
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.catalog.sample_db import build_catalog, index_cities_mayor_name
from repro.optimizer.logical_props import build_query_vars
from repro.optimizer.memo import Memo
from repro.optimizer.selectivity import SelectivityModel


def _memo(tree):
    catalog = build_catalog()
    catalog.add_index(index_cities_mayor_name())
    qvars = build_query_vars(tree, catalog)
    return Memo(catalog, SelectivityModel(catalog, qvars))


def _mayor_tree():
    return Select(
        Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
        Conjunction.of(
            Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("Joe"))
        ),
    )


class TestInsertion:
    def test_tree_creates_group_per_operator(self):
        tree = _mayor_tree()
        memo = _memo(tree)
        memo.insert_expression(tree)
        assert len(memo.groups()) == 3

    def test_duplicate_insertion_dedups(self):
        tree = _mayor_tree()
        memo = _memo(tree)
        g1 = memo.insert_expression(tree)
        before = memo.mexpr_count
        g2 = memo.insert_expression(tree)
        assert g1 == g2
        assert memo.mexpr_count == before

    def test_common_subexpression_shared(self):
        """Two expressions over the same Get share the leaf group."""
        tree = _mayor_tree()
        memo = _memo(tree)
        memo.insert_expression(tree)
        other = Mat(Get("Cities", "c"), RefSource("c", "country"), "c.country")
        memo.insert_expression(other)
        get_groups = [
            g
            for g in memo.groups()
            if any(isinstance(m.op, Get) for m in g.mexprs)
        ]
        assert len(get_groups) == 1

    def test_insert_tree_with_group_reuse(self):
        tree = _mayor_tree()
        memo = _memo(tree)
        root = memo.insert_expression(tree)
        mat_gid = next(
            g.gid
            for g in memo.groups()
            if any(isinstance(m.op, Mat) for m in g.mexprs)
        )
        # Insert the same Select over the existing Mat group: dedups into root.
        gid = memo.insert_tree((tree, (mat_gid,)), target_gid=None)
        assert memo.find(gid) == memo.find(root)


class TestMerging:
    def test_target_conflict_merges_groups(self):
        tree = _mayor_tree()
        memo = _memo(tree)
        root = memo.insert_expression(tree)
        other = memo.insert_expression(
            Mat(Get("Cities", "c"), RefSource("c", "country"), "c.country")
        )
        assert memo.find(root) != memo.find(other)
        # Claim the root m-expr belongs in `other`'s group: they must merge.
        select_mexpr = memo.group(root).mexprs[0]
        memo.insert_mexpr(select_mexpr.op, select_mexpr.children, target_gid=other)
        assert memo.find(root) == memo.find(other)
        assert memo.merge_count == 1

    def test_dedup_group_after_merge(self):
        tree = _mayor_tree()
        memo = _memo(tree)
        root = memo.insert_expression(tree)
        memo.dedup_group(root)
        keys = [
            (m.op.signature(), tuple(memo.find(c) for c in m.children))
            for m in memo.group(root).mexprs
        ]
        assert len(keys) == len(set(keys))


class TestLogicalProps:
    def test_get_cardinality(self):
        tree = Get("Cities", "c")
        memo = _memo(tree)
        gid = memo.insert_expression(tree)
        assert memo.group(gid).props.cardinality == 10_000

    def test_mat_preserves_cardinality(self):
        tree = Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor")
        memo = _memo(tree)
        gid = memo.insert_expression(tree)
        assert memo.group(gid).props.cardinality == 10_000
        assert memo.group(gid).props.scope.names == {"c", "c.mayor"}

    def test_select_applies_selectivity(self):
        tree = _mayor_tree()
        memo = _memo(tree)
        gid = memo.insert_expression(tree)
        # Path index distinct = 5000 -> 10000/5000 = 2 qualifying cities.
        assert memo.group(gid).props.cardinality == pytest.approx(2.0)

    def test_unnest_fanout(self):
        tree = Unnest(Get("Tasks", "t"), "t", "team_members", "m")
        memo = _memo(tree)
        gid = memo.insert_expression(tree)
        assert memo.group(gid).props.cardinality == pytest.approx(12_000 * 8)

    def test_mat_join_consistency(self):
        """The paper-critical invariant: Mat and its Join rewriting land in
        (potentially) different groups with the SAME cardinality."""
        mat_tree = Mat(Get("Cities", "c"), RefSource("c", "country"), "c.country")
        memo = _memo(mat_tree)
        mat_gid = memo.insert_expression(mat_tree)
        join_tree = Join(
            Get("Cities", "c"),
            Get("extent(Country)", "c.country"),
            Conjunction.of(
                Comparison(
                    RefAttr("c", "country"), CompOp.EQ, SelfOid("c.country")
                )
            ),
        )
        join_gid = memo.insert_expression(join_tree)
        assert memo.group(mat_gid).props.cardinality == pytest.approx(
            memo.group(join_gid).props.cardinality
        )

    def test_setop_cardinalities(self):
        a = Get("Cities", "c")
        memo = _memo(a)
        union = memo.insert_expression(SetOp(SetOpKind.UNION, a, a))
        intersect = memo.insert_expression(SetOp(SetOpKind.INTERSECT, a, a))
        diff = memo.insert_expression(SetOp(SetOpKind.DIFFERENCE, a, a))
        assert memo.group(union).props.cardinality == 20_000
        assert memo.group(intersect).props.cardinality == 10_000
        assert memo.group(diff).props.cardinality == 10_000
