"""Unit tests for variable origins and logical property helpers."""

import pytest

from repro.algebra.operators import Get, Join, Mat, RefSource, Select, Unnest
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
)
from repro.algebra.scopes import BindingKind, Scope, VarBinding
from repro.catalog.sample_db import build_catalog
from repro.errors import OptimizerError
from repro.optimizer.logical_props import (
    build_query_vars,
    tuple_width_bytes,
)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestOrigins:
    def test_get_origin(self, catalog):
        qvars = build_query_vars(Get("Cities", "c"), catalog)
        origin = qvars.origin("c")
        assert origin.collection == "Cities"
        assert origin.path == ()
        assert origin.type_name == "City"

    def test_mat_chain_origin(self, catalog):
        tree = Mat(
            Mat(Get("Cities", "c"), RefSource("c", "country"), "c.country"),
            RefSource("c.country", "president"),
            "c.country.president",
        )
        qvars = build_query_vars(tree, catalog)
        origin = qvars.origin("c.country.president")
        assert origin.collection == "Cities"
        assert origin.path == ("country", "president")
        assert origin.type_name == "Person"

    def test_unnest_then_mat_origin(self, catalog):
        tree = Mat(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m_ref"),
            RefSource("m_ref", None),
            "m",
        )
        qvars = build_query_vars(tree, catalog)
        assert qvars.origin("m").path == ("team_members",)
        assert qvars.origin("m").type_name == "Employee"
        # The bare-ref Mat shares the unnest binding's origin.
        assert qvars.origin("m") == qvars.origin("m_ref")

    def test_join_sides_both_traced(self, catalog):
        tree = Join(
            Get("Employees", "e"),
            Get("extent(Department)", "d"),
            Conjunction.true(),
        )
        qvars = build_query_vars(tree, catalog)
        assert qvars.origin("e").collection == "Employees"
        assert qvars.origin("d").collection == "extent(Department)"

    def test_unknown_variable_raises(self, catalog):
        qvars = build_query_vars(Get("Cities", "c"), catalog)
        with pytest.raises(OptimizerError):
            qvars.origin("zzz")


class TestEnforceSources:
    def test_mat_records_source(self, catalog):
        tree = Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor")
        qvars = build_query_vars(tree, catalog)
        assert qvars.source_of("c.mayor") == RefSource("c", "mayor")

    def test_get_variable_has_no_source(self, catalog):
        qvars = build_query_vars(Get("Cities", "c"), catalog)
        assert qvars.source_of("c") is None

    def test_sources_survive_wrapping_operators(self, catalog):
        tree = Select(
            Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
            Conjunction.of(
                Comparison(FieldRef("c.mayor", "name"), CompOp.EQ, Const("J"))
            ),
        )
        qvars = build_query_vars(tree, catalog)
        assert qvars.source_of("c.mayor") is not None


class TestTupleWidth:
    def test_object_bindings_use_type_sizes(self, catalog):
        scope = Scope.of(
            VarBinding("c", "City", BindingKind.OBJECT),
            VarBinding("p", "Person", BindingKind.OBJECT),
        )
        # City 200 + Person 100 + 16 overhead.
        assert tuple_width_bytes(scope, catalog) == 316.0

    def test_ref_bindings_are_cheap(self, catalog):
        scope = Scope.of(VarBinding("m", "Employee", BindingKind.REF))
        assert tuple_width_bytes(scope, catalog) == 24.0

    def test_empty_scope_overhead_only(self, catalog):
        assert tuple_width_bytes(Scope.of(), catalog, overhead=16) == 16.0
