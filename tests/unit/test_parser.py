"""Unit tests for the ZQL parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.lang.ast import (
    ComparisonAst,
    ConstAst,
    ExistsAst,
    PathAst,
    QueryAst,
    SetQueryAst,
)
from repro.lang.parser import parse_query


class TestBasics:
    def test_select_star(self):
        q = parse_query("SELECT * FROM City c IN Cities")
        assert isinstance(q, QueryAst)
        assert q.select_items == ()
        assert q.ranges[0].var == "c"
        assert q.ranges[0].type_name == "City"
        assert q.ranges[0].source == "Cities"

    def test_untyped_range(self):
        q = parse_query("SELECT * FROM c IN Cities")
        assert q.ranges[0].type_name is None

    def test_select_paths_with_aliases(self):
        q = parse_query("SELECT c.name AS city, c.mayor.age FROM c IN Cities")
        assert q.select_items[0].alias == "city"
        assert q.select_items[1].path == PathAst("c", ("mayor", "age"))

    def test_newobject_constructor_form(self):
        q = parse_query("SELECT Newobject(e.name(), d.name()) FROM e IN Employees, d IN Departments")
        assert len(q.select_items) == 2
        assert q.select_items[0].path == PathAst("e", ("name",))

    def test_cxx_accessor_parens_ignored(self):
        q = parse_query("SELECT * FROM c IN Cities WHERE c.mayor().name() == 'Joe'")
        comp = q.where[0]
        assert comp.left == PathAst("c", ("mayor", "name"))

    def test_distinct(self):
        q = parse_query("SELECT DISTINCT c.name FROM c IN Cities")
        assert q.distinct

    def test_extent_collection_name(self):
        q = parse_query("SELECT * FROM Department d IN extent(Department)")
        assert q.ranges[0].source == "extent(Department)"

    def test_trailing_semicolon_allowed(self):
        parse_query("SELECT * FROM c IN Cities;")


class TestConditions:
    def test_conjunction_flattened(self):
        q = parse_query(
            "SELECT * FROM c IN Cities WHERE c.population >= 10 && c.name == 'x' AND c.population <= 99"
        )
        assert len(q.where) == 3

    def test_all_comparison_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            q = parse_query(f"SELECT * FROM c IN Cities WHERE c.population {op} 5")
            assert q.where[0].op == op

    def test_constant_on_left(self):
        q = parse_query("SELECT * FROM c IN Cities WHERE 5 < c.population")
        assert isinstance(q.where[0].left, ConstAst)

    def test_oid_comparison(self):
        q = parse_query(
            "SELECT * FROM e IN Employees, d IN extent(Department) WHERE e.department == d"
        )
        comp = q.where[0]
        assert comp.right == PathAst("d")

    def test_exists_subquery(self):
        q = parse_query(
            "SELECT * FROM t IN Tasks WHERE EXISTS "
            "(SELECT m FROM m IN t.team_members WHERE m.name == 'Fred')"
        )
        exists = q.where[0]
        assert isinstance(exists, ExistsAst)
        inner = exists.query
        assert inner.ranges[0].source == PathAst("t", ("team_members",))

    def test_parenthesized_condition(self):
        q = parse_query("SELECT * FROM c IN Cities WHERE (c.population > 5)")
        assert isinstance(q.where[0], ComparisonAst)


class TestSetQueries:
    def test_union(self):
        q = parse_query("SELECT c.name FROM c IN Cities UNION SELECT c.name FROM c IN Capitals")
        assert isinstance(q, SetQueryAst)
        assert q.kind == "union"

    def test_left_associative_chain(self):
        q = parse_query(
            "SELECT c.name FROM c IN Cities UNION SELECT c.name FROM c IN Capitals "
            "EXCEPT SELECT c.name FROM c IN Cities"
        )
        assert q.kind == "except"
        assert isinstance(q.left, SetQueryAst)
        assert q.left.kind == "union"


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT *")

    def test_missing_comparison_operator(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM c IN Cities WHERE c.name")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM c IN Cities garbage")

    def test_missing_in(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM City c Cities")

    def test_empty_input(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")

    def test_disjunction_not_supported(self):
        # The dialect (like the paper's simplification) is conjunctive.
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM c IN Cities WHERE c.name == 'x' || c.name == 'y'")
