"""Unit tests for the Table 1 data generator."""

import pytest

from repro.catalog.catalog import extent_name
from repro.catalog.sample_db import SampleSizes, build_catalog
from repro.storage.datagen import (
    DALLAS,
    FRED,
    JOE,
    QUERY4_TIME,
    generate_store,
    scaled_sizes,
)


@pytest.fixture(scope="module")
def world():
    sizes = scaled_sizes(0.02)
    return sizes, generate_store(build_catalog(sizes), sizes)


class TestCardinalities:
    def test_collections_match_catalog(self, world):
        sizes, store = world
        assert store.collection_cardinality("Cities") == sizes.cities
        assert store.collection_cardinality("Employees") == sizes.employees_set
        assert (
            store.collection_cardinality(extent_name("Employee"))
            == sizes.employee_extent
        )
        assert store.collection_cardinality("Tasks") == sizes.tasks_set

    def test_named_set_is_prefix_of_extent(self, world):
        _, store = world
        extent = store.collection_oids(extent_name("Employee"))
        members = store.collection_oids("Employees")
        assert members == extent[: len(members)]


class TestReferentialIntegrity:
    def test_all_references_resolve(self, world):
        _, store = world
        for oid in store.collection_oids("Cities"):
            data = store.peek(oid)
            assert store.peek(data["mayor"])["name"]
            assert store.peek(data["country"])["name"]

    def test_country_capital_cycle_patched(self, world):
        _, store = world
        for oid in store.collection_oids("Capitals"):
            country = store.peek(store.peek(oid)["country"])
            assert country["capital"] is not None

    def test_team_members_are_set_employees(self, world):
        _, store = world
        member_set = set(store.collection_oids("Employees"))
        for oid in store.collection_oids("Tasks")[:50]:
            for member in store.peek(oid)["team_members"]:
                assert member in member_set


class TestDistributions:
    def test_query_constants_present(self, world):
        _, store = world
        names = {store.peek(o)["name"] for o in store.collection_oids(extent_name("Person"))}
        assert JOE in names
        employee_names = {
            store.peek(o)["name"]
            for o in store.collection_oids(extent_name("Employee"))
        }
        assert FRED in employee_names

    def test_dallas_plants_exist(self, world):
        _, store = world
        locations = {
            store.peek(o)["location"]
            for o in store.segment("Plant").oids
        }
        assert DALLAS in locations

    def test_query4_time_value_exists(self, world):
        _, store = world
        times = {store.peek(o)["time"] for o in store.collection_oids("Tasks")}
        assert QUERY4_TIME in times

    def test_team_size_near_catalog_average(self, world):
        sizes, store = world
        tasks = store.collection_oids("Tasks")
        mean = sum(len(store.peek(o)["team_members"]) for o in tasks) / len(tasks)
        assert abs(mean - sizes.avg_team_size) < 1.0

    def test_plants_sparse(self, world):
        _, store = world
        assert not store.segment("Plant").dense


class TestDeterminism:
    def test_same_seed_same_world(self):
        sizes = scaled_sizes(0.01)
        a = generate_store(build_catalog(sizes), sizes, seed=7)
        b = generate_store(build_catalog(sizes), sizes, seed=7)
        for oid in a.collection_oids("Cities")[:20]:
            assert a.peek(oid) == b.peek(oid)

    def test_different_seed_differs(self):
        sizes = scaled_sizes(0.01)
        a = generate_store(build_catalog(sizes), sizes, seed=7)
        b = generate_store(build_catalog(sizes), sizes, seed=8)
        differs = any(
            a.peek(oid)["mayor"] != b.peek(oid)["mayor"]
            for oid in a.collection_oids("Cities")[:50]
        )
        assert differs


class TestScaledSizes:
    def test_scaling_preserves_ratios(self):
        base = SampleSizes()
        scaled = scaled_sizes(0.1)
        assert scaled.cities == int(base.cities * 0.1)
        assert scaled.employee_extent == int(base.employee_extent * 0.1)

    def test_minimums_respected(self):
        tiny = scaled_sizes(0.00001)
        assert tiny.cities >= 4
        assert tiny.distinct_task_times >= 10
