"""Unit tests for the sort and merge-join iterators."""

import pytest

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.engine.iterators import merge_join, sort_rows
from repro.engine.tuples import Obj
from repro.errors import ExecutionError
from repro.storage.objects import Oid


def obj_row(var: str, serial: int, **fields) -> dict:
    return {var: Obj(Oid("T", serial), fields)}


class TestSortRows:
    def test_sort_by_attribute(self):
        rows = [obj_row("x", i, v=val) for i, val in enumerate([3, 1, 2])]
        out = list(sort_rows(rows, "x", "v", ascending=True))
        assert [r["x"].field("v") for r in out] == [1, 2, 3]

    def test_sort_descending(self):
        rows = [obj_row("x", i, v=val) for i, val in enumerate([3, 1, 2])]
        out = list(sort_rows(rows, "x", "v", ascending=False))
        assert [r["x"].field("v") for r in out] == [3, 2, 1]

    def test_sort_by_oid(self):
        rows = [obj_row("x", serial) for serial in (5, 1, 3)]
        out = list(sort_rows(rows, "x", None, ascending=True))
        assert [r["x"].oid.serial for r in out] == [1, 3, 5]

    def test_sort_by_ref_binding(self):
        rows = [{"m": Oid("T", serial)} for serial in (9, 2, 4)]
        out = list(sort_rows(rows, "m", None, ascending=True))
        assert [r["m"].serial for r in out] == [2, 4, 9]

    def test_sort_is_stable(self):
        rows = [obj_row("x", i, v=1, tag=i) for i in range(5)]
        out = list(sort_rows(rows, "x", "v", ascending=True))
        assert [r["x"].field("tag") for r in out] == [0, 1, 2, 3, 4]

    def test_sort_attr_of_ref_binding_raises(self):
        rows = [{"m": Oid("T", 1)}]
        with pytest.raises(ExecutionError):
            list(sort_rows(rows, "m", "name", ascending=True))


class TestMergeJoin:
    def _pred(self):
        return Conjunction.of(
            Comparison(RefAttr("a", "ref"), CompOp.EQ, SelfOid("b"))
        )

    def _sides(self, left_refs, right_serials):
        left = [
            {"a": Obj(Oid("A", i), {"ref": Oid("B", ref), "tag": i})}
            for i, ref in enumerate(left_refs)
        ]
        right = [{"b": Obj(Oid("B", s), {"val": s})} for s in right_serials]
        return left, right

    def test_basic_match(self):
        left, right = self._sides([1, 2, 2, 5], [1, 2, 3, 5])
        out = list(
            merge_join(left, right, self._pred(), RefAttr("a", "ref"), SelfOid("b"))
        )
        pairs = [(r["a"].field("tag"), r["b"].oid.serial) for r in out]
        assert pairs == [(0, 1), (1, 2), (2, 2), (3, 5)]

    def test_duplicates_cross_product(self):
        left, right = self._sides([2, 2], [2])
        right = right + [{"b": Obj(Oid("B", 2), {"val": 2})}]
        # Two left rows x two right rows with key 2 -> 4 outputs.
        out = list(
            merge_join(
                left,
                sorted(right, key=lambda r: r["b"].oid),
                self._pred(),
                RefAttr("a", "ref"),
                SelfOid("b"),
            )
        )
        assert len(out) == 4

    def test_none_keys_dropped(self):
        left, right = self._sides([1], [1])
        left.insert(0, {"a": Obj(Oid("A", 99), {"ref": None, "tag": 99})})
        out = list(
            merge_join(left, right, self._pred(), RefAttr("a", "ref"), SelfOid("b"))
        )
        assert [r["a"].field("tag") for r in out] == [0]

    def test_residual_applied(self):
        from repro.algebra.predicates import Const

        pred = Conjunction.of(
            Comparison(RefAttr("a", "ref"), CompOp.EQ, SelfOid("b")),
            Comparison(FieldRef("b", "val"), CompOp.GE, Const(3)),
        )
        left, right = self._sides([1, 5], [1, 5])
        out = list(
            merge_join(left, right, pred, RefAttr("a", "ref"), SelfOid("b"))
        )
        assert [r["b"].field("val") for r in out] == [5]

    def test_empty_sides(self):
        left, right = self._sides([1], [1])
        pred = self._pred()
        assert list(merge_join([], right, pred, RefAttr("a", "ref"), SelfOid("b"))) == []
        assert list(merge_join(left, [], pred, RefAttr("a", "ref"), SelfOid("b"))) == []

    def test_output_order_follows_left(self):
        left, right = self._sides([1, 3, 5, 7], [1, 3, 5, 7])
        out = list(
            merge_join(left, right, self._pred(), RefAttr("a", "ref"), SelfOid("b"))
        )
        tags = [r["a"].field("tag") for r in out]
        assert tags == sorted(tags)
