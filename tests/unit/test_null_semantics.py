"""NULL (missing-attribute) semantics, identical across every operator.

The engine's contract is SQL-style: a comparison over None is false, so
nulls never satisfy a predicate, never equi-join, and never eliminate a
row from an anti-join — and the sort enforcer orders them *last* in both
directions instead of crashing on ``None < int``.  These tests pin each
operator's behaviour directly, independent of the differential fuzzer
that originally found the divergences.
"""

import pytest

from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
)
from repro.catalog.catalog import Catalog, IndexDef, extent_name
from repro.catalog.schema import Schema, TypeDef, scalar
from repro.engine import iterators as it
from repro.engine.tuples import eval_comparison, ordering_key
from repro.storage.index import IndexRuntime
from repro.storage.store import ObjectStore

PERSONS = extent_name("Person")
PETS = extent_name("Pet")


def _catalog() -> Catalog:
    schema = Schema()
    schema.add_type(
        TypeDef("Person", 400, (scalar("name", "str"), scalar("age"))),
        with_extent=True,
    )
    schema.add_type(
        TypeDef("Pet", 400, (scalar("name", "str"),)),
        with_extent=True,
    )
    return Catalog(schema)


@pytest.fixture()
def store() -> ObjectStore:
    store = ObjectStore(_catalog())
    for name, age in [
        ("joe", 50),
        (None, None),
        ("ann", 30),
        ("joe", None),
    ]:
        store.insert("Person", {"name": name, "age": age})
    for name in ["joe", None, "rex"]:
        store.insert("Pet", {"name": name})
    store.seal()
    return store


class TestComparisons:
    def test_null_compares_false_under_every_op(self):
        row = {"p": None}
        for op in CompOp:
            comparison = Comparison(Const(None), op, Const(1))
            assert eval_comparison(comparison, row) is False
            flipped = Comparison(Const(1), op, Const(None))
            assert eval_comparison(flipped, row) is False

    def test_null_does_not_equal_null(self):
        comparison = Comparison(Const(None), CompOp.EQ, Const(None))
        assert eval_comparison(comparison, {}) is False

    def test_cross_type_comparison_is_false_not_a_crash(self):
        comparison = Comparison(Const("joe"), CompOp.LT, Const(7))
        assert eval_comparison(comparison, {}) is False


class TestSortEnforcer:
    def test_nulls_sort_last_ascending(self, store):
        rows = it.file_scan(store, PERSONS, "p")
        out = list(it.sort_rows(rows, "p", "age", True))
        assert [r["p"].field("age") for r in out] == [30, 50, None, None]

    def test_nulls_sort_last_descending_too(self, store):
        rows = it.file_scan(store, PERSONS, "p")
        out = list(it.sort_rows(rows, "p", "age", False))
        assert [r["p"].field("age") for r in out] == [50, 30, None, None]

    def test_tie_vars_make_the_order_total(self, store):
        people = list(it.file_scan(store, PERSONS, "p"))
        pets = list(it.file_scan(store, PETS, "q"))
        # Every row shares the same p: the key ties completely without
        # tie_vars, but the q component makes each key distinct.
        rows = [{"p": people[0]["p"], "q": pet["q"]} for pet in pets]
        key = ordering_key("p", "age", True, tie_vars=("q",))
        keys = [key(r) for r in rows]
        assert len(set(keys)) == len(keys)
        forward = sorted(rows, key=key)
        backward = sorted(reversed(rows), key=key)
        assert [r["q"].oid for r in forward] == [r["q"].oid for r in backward]


class TestIndexScan:
    def test_ne_probe_excludes_the_null_bucket(self, store):
        index = IndexRuntime.build(
            store, IndexDef("ix", PERSONS, ("name",), 3)
        )
        rows = list(
            it.index_scan(
                store,
                index,
                "p",
                Comparison(FieldRef("p", "name"), CompOp.NE, Const("joe")),
                Conjunction.true(),
            )
        )
        # Only "ann": the two "joe"s are equal, the null name is unknown.
        assert [r["p"].field("name") for r in rows] == ["ann"]

    def test_eq_probe_never_returns_null_keys(self, store):
        index = IndexRuntime.build(
            store, IndexDef("ix", PERSONS, ("name",), 3)
        )
        rows = list(
            it.index_scan(
                store,
                index,
                "p",
                Comparison(FieldRef("p", "name"), CompOp.EQ, Const("joe")),
                Conjunction.true(),
            )
        )
        assert all(r["p"].field("name") == "joe" for r in rows)
        assert len(rows) == 2


class TestHashJoin:
    def _join(self, store):
        people = list(it.file_scan(store, PERSONS, "p"))
        pets = list(it.file_scan(store, PETS, "q"))
        pred = Conjunction.of(
            Comparison(
                FieldRef("p", "name"), CompOp.EQ, FieldRef("q", "name")
            )
        )
        return people, pets, pred

    def test_null_keys_never_match(self, store):
        people, pets, pred = self._join(store)
        out = list(it.hash_join(people, pets, pred))
        # joe(50) and joe(None) each match the pet "joe"; the null names
        # on both sides never pair up, even though dict equality would
        # happily have said None == None.
        assert sorted(r["p"].field("age") or 0 for r in out) == [0, 50]
        assert all(r["q"].field("name") == "joe" for r in out)

    def test_matches_nested_loops_exactly(self, store):
        people, pets, pred = self._join(store)
        hj = {
            (r["p"].oid, r["q"].oid)
            for r in it.hash_join(people, pets, pred)
        }
        nl = {
            (r["p"].oid, r["q"].oid)
            for r in it.nested_loops_join(people, pets, pred)
        }
        assert hj == nl


class TestAntiJoin:
    def test_null_left_key_survives_and_null_right_rows_do_not_kill(
        self, store
    ):
        people = list(it.file_scan(store, PERSONS, "p"))
        pets = list(it.file_scan(store, PETS, "q"))
        pred = Conjunction.of(
            Comparison(
                FieldRef("p", "name"), CompOp.EQ, FieldRef("q", "name")
            )
        )
        out = list(it.anti_join(people, pets, pred))
        # Survivors: ann (no pet named ann) and the null-named person
        # (NOT EXISTS over an always-unknown predicate is true).  Both
        # joes are eliminated by the pet "joe"; the null-named pet
        # eliminates nobody.
        names = sorted(
            (r["p"].field("name") or "<null>") for r in out
        )
        assert names == ["<null>", "ann"]
