"""Unit tests for individual transformation rules.

Strategy: build a memo with one expression, apply a single rule to a
specific m-expr, and check the produced alternative's shape.  Soundness
(same results on real data) is covered by the property and integration
suites; here we verify each rule fires exactly when its preconditions
hold.
"""

from repro.algebra.operators import (
    Get,
    Join,
    Mat,
    RefSource,
    Select,
    Unnest,
)
from repro.algebra.predicates import (
    CompOp,
    Comparison,
    Conjunction,
    Const,
    FieldRef,
    RefAttr,
    SelfOid,
)
from repro.catalog.sample_db import build_catalog
from repro.optimizer import transformations as T
from repro.optimizer.logical_props import build_query_vars
from repro.optimizer.memo import Memo
from repro.optimizer.selectivity import SelectivityModel


def _memo_for(tree):
    catalog = build_catalog()
    qvars = build_query_vars(tree, catalog)
    memo = Memo(catalog, SelectivityModel(catalog, qvars))
    gid = memo.insert_expression(tree)
    return memo, gid


def _apply(rule, memo, gid):
    results = []
    for mexpr in list(memo.group(gid).mexprs):
        results.extend(rule.apply(mexpr, memo))
    return results


def _eq(l, r):
    return Conjunction.of(Comparison(l, CompOp.EQ, r))


MAYOR_JOE = _eq(FieldRef("c.mayor", "name"), Const("Joe"))
CITY_NAME = _eq(FieldRef("c", "name"), Const("x"))


class TestSelectRules:
    def test_select_past_mat_pushes_independent_conjunct(self):
        tree = Select(
            Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
            CITY_NAME,
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.SelectPastMat(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Mat)  # Select moved fully below

    def test_select_past_mat_blocked_by_dependency(self):
        tree = Select(
            Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
            MAYOR_JOE,
        )
        memo, gid = _memo_for(tree)
        assert _apply(T.SelectPastMat(), memo, gid) == []

    def test_select_past_mat_partial_split(self):
        tree = Select(
            Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
            MAYOR_JOE.conjoin(CITY_NAME),
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.SelectPastMat(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Select)  # dependent part stays above
        assert op.predicate == MAYOR_JOE

    def test_mat_past_select_pulls_up(self):
        tree = Mat(
            Select(Get("Cities", "c"), CITY_NAME),
            RefSource("c", "mayor"),
            "c.mayor",
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.MatPastSelect(), memo, gid)
        assert len(trees) == 1
        assert isinstance(trees[0][0], Select)

    def test_select_merge(self):
        tree = Select(Select(Get("Cities", "c"), CITY_NAME), _eq(FieldRef("c", "population"), Const(5)))
        memo, gid = _memo_for(tree)
        trees = _apply(T.SelectMerge(), memo, gid)
        assert len(trees) == 1
        assert len(trees[0][0].predicate.comparisons) == 2

    def test_select_past_unnest(self):
        tree = Select(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m"),
            _eq(FieldRef("t", "time"), Const(100)),
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.SelectPastUnnest(), memo, gid)
        assert len(trees) == 1
        assert isinstance(trees[0][0], Unnest)

    def test_select_past_join_distributes(self):
        join = Join(
            Get("Employees", "e"),
            Get("extent(Department)", "d"),
            Conjunction.true(),
        )
        pred = _eq(FieldRef("d", "floor"), Const(3)).conjoin(
            _eq(RefAttr("e", "department"), SelfOid("d"))
        )
        memo, gid = _memo_for(Select(join, pred))
        trees = _apply(T.SelectPastJoin(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Join)
        # The spanning conjunct became the join predicate...
        assert len(op.predicate.comparisons) == 1
        # ...and the d-only conjunct moved to the right input.
        right = children[1]
        assert isinstance(right, tuple) and isinstance(right[0], Select)


class TestJoinRules:
    def _dept_join(self):
        return Join(
            Get("Employees", "e"),
            Get("extent(Department)", "d"),
            _eq(RefAttr("e", "department"), SelfOid("d")),
        )

    def test_commutativity(self):
        memo, gid = _memo_for(self._dept_join())
        trees = _apply(T.JoinCommutativity(), memo, gid)
        assert len(trees) == 1
        _, children = trees[0]
        assert children == tuple(reversed(memo.group(gid).mexprs[0].children))

    def test_associativity(self):
        inner = self._dept_join()
        outer = Join(
            inner,
            Get("extent(Job)", "j"),
            _eq(RefAttr("e", "job"), SelfOid("j")),
        )
        memo, gid = _memo_for(outer)
        trees = _apply(T.JoinAssociativity(), memo, gid)
        # (e ⋈ d) ⋈ j with predicates e-d and e-j: rotating would need a
        # d-j or cartesian inner join, which the rule declines to fabricate.
        assert trees == []

    def test_associativity_fires_with_chain_predicates(self):
        base = Join(
            Get("Cities", "c"),
            Get("extent(Country)", "n"),
            _eq(RefAttr("c", "country"), SelfOid("n")),
        )
        outer = Join(
            base,
            Get("extent(Person)", "p"),
            _eq(RefAttr("n", "president"), SelfOid("p")),
        )
        memo, gid = _memo_for(outer)
        trees = _apply(T.JoinAssociativity(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Join)
        inner_tree = children[1]
        assert isinstance(inner_tree[0], Join)  # (n ⋈ p) inner


class TestMatRules:
    def test_mat_commutativity_independent(self):
        tree = Mat(
            Mat(Get("Cities", "c"), RefSource("c", "mayor"), "c.mayor"),
            RefSource("c", "country"),
            "c.country",
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.MatCommutativity(), memo, gid)
        assert len(trees) == 1
        assert trees[0][0].out == "c.mayor"  # inner moved outside

    def test_mat_commutativity_blocked_by_dependency(self):
        """'country must be materialized before president' (Figure 2)."""
        tree = Mat(
            Mat(Get("Cities", "c"), RefSource("c", "country"), "c.country"),
            RefSource("c.country", "president"),
            "c.country.president",
        )
        memo, gid = _memo_for(tree)
        assert _apply(T.MatCommutativity(), memo, gid) == []

    def test_mat_to_join_with_extent(self):
        tree = Mat(Get("Cities", "c"), RefSource("c", "country"), "c.country")
        memo, gid = _memo_for(tree)
        trees = _apply(T.MatToJoin(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Join)
        get_tree = children[1]
        assert get_tree[0].collection == "extent(Country)"
        assert get_tree[0].var == "c.country"

    def test_mat_to_join_blocked_without_extent(self):
        """Plant has no extent: reference traversal cannot become a join."""
        tree = Mat(
            Get("extent(Department)", "d"), RefSource("d", "plant"), "d.plant"
        )
        memo, gid = _memo_for(tree)
        assert _apply(T.MatToJoin(), memo, gid) == []

    def test_join_to_mat_roundtrip(self):
        tree = Join(
            Get("Cities", "c"),
            Get("extent(Country)", "n"),
            _eq(RefAttr("c", "country"), SelfOid("n")),
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.JoinToMat(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Mat)
        assert op.out == "n"
        assert op.source == RefSource("c", "country")

    def test_join_to_mat_requires_extent_side(self):
        """A named set does not contain every referenced object, so a join
        against it must not be rewritten into a traversal."""
        from repro.algebra.predicates import VarRef

        tree = Join(
            Unnest(Get("Tasks", "t"), "t", "team_members", "m"),
            Get("Employees", "e"),  # named set, not the extent
            Conjunction.of(Comparison(VarRef("m"), CompOp.EQ, SelfOid("e"))),
        )
        memo, gid = _memo_for(tree)
        assert _apply(T.JoinToMat(), memo, gid) == []

    def test_mat_into_join(self):
        join = Join(
            Get("Employees", "e"),
            Get("extent(Job)", "j"),
            _eq(RefAttr("e", "job"), SelfOid("j")),
        )
        tree = Mat(join, RefSource("e", "department"), "e.department")
        memo, gid = _memo_for(tree)
        trees = _apply(T.MatIntoJoin(), memo, gid)
        assert len(trees) == 1
        op, children = trees[0]
        assert isinstance(op, Join)
        left = children[0]
        assert isinstance(left[0], Mat)  # pushed into the employee side

    def test_mat_out_of_join(self):
        inner = Mat(Get("Employees", "e"), RefSource("e", "department"), "e.department")
        tree = Join(
            inner,
            Get("extent(Job)", "j"),
            _eq(RefAttr("e", "job"), SelfOid("j")),
        )
        memo, gid = _memo_for(tree)
        trees = _apply(T.MatOutOfJoin(), memo, gid)
        assert len(trees) == 1
        assert isinstance(trees[0][0], Mat)

    def test_mat_out_of_join_blocked_by_predicate(self):
        """A Mat whose output the join predicate uses cannot move above it."""
        inner = Mat(Get("Employees", "e"), RefSource("e", "department"), "d")
        tree = Join(
            inner,
            Get("extent(Job)", "j"),
            _eq(FieldRef("d", "floor"), FieldRef("j", "pay_grade")),
        )
        memo, gid = _memo_for(tree)
        assert _apply(T.MatOutOfJoin(), memo, gid) == []
