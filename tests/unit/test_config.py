"""Unit tests for optimizer configuration semantics."""

from repro.optimizer import config as C
from repro.optimizer.config import OptimizerConfig


class TestRuleToggles:
    def test_default_enables_everything_but_warm_start(self):
        config = OptimizerConfig()
        for name in C.ALL_TRANSFORMATIONS + C.ALL_IMPLEMENTATIONS:
            expected = name != C.WARM_START_ASSEMBLY
            assert config.is_enabled(name) is expected
        assert config.is_enabled(C.ASSEMBLY_ENFORCER)
        assert config.is_enabled(C.SORT_ENFORCER)

    def test_without_accumulates(self):
        config = OptimizerConfig().without(C.MAT_TO_JOIN).without(C.FILTER)
        assert not config.is_enabled(C.MAT_TO_JOIN)
        assert not config.is_enabled(C.FILTER)

    def test_with_rules_reenables(self):
        config = OptimizerConfig().with_rules(C.WARM_START_ASSEMBLY)
        assert config.is_enabled(C.WARM_START_ASSEMBLY)

    def test_configs_are_immutable_values(self):
        base = OptimizerConfig()
        derived = base.without(C.MAT_TO_JOIN)
        assert base.is_enabled(C.MAT_TO_JOIN)
        assert base != derived
        assert hash(base) != hash(derived)

    def test_rule_names_unique(self):
        names = C.ALL_TRANSFORMATIONS + C.ALL_IMPLEMENTATIONS + (
            C.ASSEMBLY_ENFORCER,
            C.SORT_ENFORCER,
        )
        assert len(names) == len(set(names))


class TestTunables:
    def test_with_window(self):
        config = OptimizerConfig().with_window(1)
        assert config.cost.assembly_window == 1
        # Other cost constants untouched.
        assert config.cost.page_size == OptimizerConfig().cost.page_size

    def test_with_heuristics(self):
        config = OptimizerConfig().with_heuristics(
            candidate_cap=2, prune_factor=0.5
        )
        assert config.candidate_cap == 2
        assert config.prune_factor == 0.5
        assert OptimizerConfig().candidate_cap is None

    def test_every_named_rule_is_disableable_end_to_end(self, paper_catalog):
        """Disabling any single rule must never break optimization of the
        paper queries (a weaker rule set only loses alternatives)."""
        from repro.lang.parser import parse_query
        from repro.optimizer import Optimizer
        from repro.simplify.simplifier import simplify_full

        sql = (
            "SELECT c.name FROM City c IN Cities "
            'WHERE c.mayor.name == "Joe"'
        )
        sq = simplify_full(parse_query(sql), paper_catalog)
        for name in C.ALL_TRANSFORMATIONS + C.ALL_IMPLEMENTATIONS:
            if name in (C.FILTER, C.FILE_SCAN, C.ALG_PROJECT):
                continue  # the last-resort implementations must stay
            config = OptimizerConfig().without(name)
            result = Optimizer(paper_catalog, config).optimize(
                sq.tree, result_vars=sq.result_vars
            )
            assert result.plan is not None, name


class TestCacheKey:
    """The plan cache keys on :meth:`OptimizerConfig.cache_key`."""

    def test_rule_disable_order_is_canonicalized(self):
        """The same rule set disabled in any order yields one cache key.

        Pre-fix the cache keyed on ``repr(config)``, where the disabled
        set's iteration order leaks in — two equal configs could occupy
        (and miss) separate cache slots.
        """
        a = OptimizerConfig().without(C.MERGE_JOIN, C.HYBRID_HASH_JOIN)
        b = OptimizerConfig().without(C.HYBRID_HASH_JOIN, C.MERGE_JOIN)
        assert a.cache_key() == b.cache_key()
        # The rendering is sorted, so the key is stable across processes
        # (frozenset iteration order follows the per-process hash seed).
        rules = a.cache_key().split(";")[0].removeprefix("rules=").split(",")
        assert rules == sorted(rules)

    def test_feedback_flag_separates_keys(self):
        base = OptimizerConfig()
        assert base.cache_key() != base.with_feedback(True).cache_key()

    def test_replan_ratio_separates_keys(self):
        a = OptimizerConfig().with_feedback(True)
        b = OptimizerConfig().with_feedback(True, replan_ratio=2.0)
        assert a.cache_key() != b.cache_key()

    def test_with_feedback_rejects_degenerate_ratio(self):
        import pytest

        with pytest.raises(ValueError):
            OptimizerConfig().with_feedback(True, replan_ratio=1.0)
