"""Plan equivalence: every optimization strategy returns the same rows.

This is the deepest soundness check in the suite — transformation rules,
implementation algorithms, enforcers, and both baselines must agree on
query results when executed against real (scaled) data.
"""

from collections import Counter

import pytest

from repro.engine.tuples import row_key
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

from tests.conftest import QUERY_1, QUERY_2, QUERY_3, QUERY_4

FIG2_QUERY = (
    "SELECT * FROM City c in Cities "
    "WHERE c.mayor.name == c.country.president.name"
)
FIG1_QUERY = (
    "SELECT Newobject(e.name(), d.name()) FROM Employee e IN Employees, "
    "Department d IN extent(Department) "
    "WHERE d.floor() == 3 AND e.age() >= 32 AND e.department() == d"
)
UNION_QUERY = (
    "SELECT c.name FROM c IN Cities WHERE c.population >= 500000 "
    "UNION SELECT k.name FROM k IN Capitals"
)

CONFIGS = {
    "default": OptimizerConfig(),
    "no-collapse": OptimizerConfig().without(C.COLLAPSE_TO_INDEX_SCAN),
    "no-mat-to-join": OptimizerConfig().without(C.MAT_TO_JOIN),
    "no-join-comm": OptimizerConfig().without(C.JOIN_COMMUTATIVITY),
    "no-pointer-join": OptimizerConfig().without(C.POINTER_JOIN),
    "no-enforcer": OptimizerConfig().without(C.ASSEMBLY_ENFORCER),
    "window-1": OptimizerConfig().with_window(1),
    "warm-start-on": OptimizerConfig().with_rules(C.WARM_START_ASSEMBLY),
    "no-pruning": OptimizerConfig(prune=False),
}


def _result_keys(db, sql, config):
    result = db.query(sql, config=config)
    return Counter(row_key(r) for r in result.rows)


@pytest.mark.parametrize(
    "sql",
    [QUERY_1, QUERY_2, QUERY_3, QUERY_4, FIG2_QUERY, FIG1_QUERY, UNION_QUERY],
    ids=["Q1", "Q2", "Q3", "Q4", "Fig2", "Fig1", "Union"],
)
def test_all_configs_agree(indexed_db, sql):
    reference = _result_keys(indexed_db, sql, CONFIGS["default"])
    for name, config in CONFIGS.items():
        assert _result_keys(indexed_db, sql, config) == reference, name


@pytest.mark.parametrize(
    "sql",
    [QUERY_1, QUERY_2, QUERY_3, QUERY_4],
    ids=["Q1", "Q2", "Q3", "Q4"],
)
def test_baselines_agree_with_optimizer(indexed_db, sql):
    simplified = indexed_db.simplify(sql)
    reference = _result_keys(indexed_db, sql, OptimizerConfig())
    greedy = indexed_db.execute_plan(
        indexed_db.greedy_plan(sql), result_vars=simplified.result_vars
    )
    naive = indexed_db.execute_plan(
        indexed_db.naive_plan(sql), result_vars=simplified.result_vars
    )
    assert Counter(row_key(r) for r in greedy.rows) == reference
    assert Counter(row_key(r) for r in naive.rows) == reference


def test_indexes_do_not_change_results(plain_db, indexed_db):
    """The same query over indexed and unindexed databases (same seed)
    returns identical rows — indexes are pure access paths."""
    for sql in (QUERY_2, QUERY_4):
        with_ix = _result_keys(indexed_db, sql, OptimizerConfig())
        without_ix = _result_keys(plain_db, sql, OptimizerConfig())
        assert with_ix == without_ix


def test_nonempty_results(indexed_db):
    """The generator plants qualifying objects for every paper query."""
    for sql in (QUERY_1, QUERY_2, QUERY_3):
        assert len(indexed_db.query(sql).rows) > 0
