"""Snapshot isolation under 64 concurrent sessions of mixed DML + reads.

The classic transfer workload: writer sessions move population between
cities (read both inside the transaction, write both back, commit), so
every committed transaction conserves the total.  Reader sessions
repeatedly sum the whole collection.  Under snapshot isolation every
read runs against one consistent snapshot, so *every* observed sum must
equal the initial total — a torn read of a half-applied transfer would
show up immediately.  Write-write conflicts must surface as typed
``WriteConflict`` (never corrupt state), and the final state must equal
the initial total exactly.

Because each transfer's read set equals its write set, first-committer-
wins makes this workload fully serializable — there is no write-skew
window for it to fall into.
"""

import random
import threading

import pytest

from repro.api import Database
from repro.errors import AdmissionRejected, WriteConflict
from repro.server import DatabaseServer, ServerClient

SCALE = 0.02
SESSIONS = 64
WRITERS = 40
TRANSFERS_PER_WRITER = 3
READS_PER_READER = 4
#: Small hot set → real write-write contention.
POOL = [f"city{i}" for i in range(10)]


def population(client, name):
    """One city's population through this session's open transaction."""
    rows = client.query(
        f"SELECT x.population FROM x IN Cities WHERE x.name == '{name}'"
    )["rows"]
    return rows[0]["x.population"]


def total_population(client):
    """Sum over the whole collection in a single statement (one snapshot)."""
    rows = client.query("SELECT x.population FROM x IN Cities")["rows"]
    return sum(row["x.population"] for row in rows)


def transfer(client, source, target, amount):
    """Move ``amount`` between two cities inside one transaction."""
    client.begin()
    try:
        a = population(client, source)
        b = population(client, target)
        client.query(
            f"UPDATE x IN Cities SET x.population = {a - amount} "
            f"WHERE x.name == '{source}'"
        )
        client.query(
            f"UPDATE x IN Cities SET x.population = {b + amount} "
            f"WHERE x.name == '{target}'"
        )
        client.commit()
    except WriteConflict:
        # The transaction is already doomed server-side; just make sure
        # the session is clean for the next attempt.
        try:
            client.rollback()
        except Exception:  # noqa: BLE001 — best-effort cleanup
            pass
        raise


@pytest.mark.slow
def test_snapshot_isolation_under_64_sessions():
    db = Database.sample(scale=SCALE)
    initial = sum(
        row["x.population"]
        for row in db.query("SELECT x.population FROM x IN Cities").rows
    )
    server = DatabaseServer(
        db, port=0, max_concurrent=8, max_wait_ms=120_000.0
    )
    host, port = server.start()

    outcome = {
        "commits": 0,
        "conflicts": 0,
        "bad_sums": [],
        "unexpected": [],
    }
    outcome_lock = threading.Lock()
    start_gate = threading.Event()

    def writer(seed):
        rng = random.Random(seed)
        try:
            with ServerClient(host, port, timeout=300.0) as client:
                start_gate.wait()
                for _ in range(TRANSFERS_PER_WRITER):
                    source, target = rng.sample(POOL, 2)
                    amount = rng.randint(1, 50)
                    try:
                        transfer(client, source, target, amount)
                        with outcome_lock:
                            outcome["commits"] += 1
                    except WriteConflict:
                        with outcome_lock:
                            outcome["conflicts"] += 1
                    except AdmissionRejected:
                        pass  # typed back-pressure is acceptable
        except Exception as exc:  # noqa: BLE001 — recorded, not swallowed
            with outcome_lock:
                outcome["unexpected"].append(f"writer {seed}: {exc!r}")

    def reader(seed):
        try:
            with ServerClient(host, port, timeout=300.0) as client:
                start_gate.wait()
                for _ in range(READS_PER_READER):
                    try:
                        observed = total_population(client)
                    except AdmissionRejected:
                        continue
                    if observed != initial:
                        with outcome_lock:
                            outcome["bad_sums"].append(observed)
        except Exception as exc:  # noqa: BLE001
            with outcome_lock:
                outcome["unexpected"].append(f"reader {seed}: {exc!r}")

    threads = [
        threading.Thread(target=writer, args=(i,), daemon=True)
        for i in range(WRITERS)
    ] + [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(SESSIONS - WRITERS)
    ]
    assert len(threads) == SESSIONS
    for thread in threads:
        thread.start()
    start_gate.set()
    for thread in threads:
        thread.join(timeout=600.0)
    assert not any(thread.is_alive() for thread in threads), "stress hung"
    server.stop()

    assert not outcome["unexpected"], "\n".join(outcome["unexpected"])
    # No torn reads: every snapshot summed to the conserved total.
    assert not outcome["bad_sums"], (
        f"non-conserved sums observed: {outcome['bad_sums'][:5]} "
        f"(expected {initial})"
    )
    # The final committed state conserves the total too.
    final = sum(
        row["x.population"]
        for row in db.query("SELECT x.population FROM x IN Cities").rows
    )
    assert final == initial
    # The workload actually exercised commits (conflicts retry elsewhere).
    assert outcome["commits"] > 0
    # Every conflict arrived as a typed WriteConflict, counted above; with
    # 40 writers over a 10-city hot set at least some contention is all
    # but certain, but the invariants above are what must hold regardless.


def test_conflict_is_deterministically_typed_across_sessions():
    """A guaranteed write-write conflict surfaces as WriteConflict."""
    db = Database.sample(scale=SCALE)
    server = DatabaseServer(db, port=0)
    host, port = server.start()
    try:
        with ServerClient(host, port) as first, ServerClient(
            host, port
        ) as second:
            second.begin()
            # Pin the second session's snapshot before the first commits.
            population(second, "city0")
            first.begin()
            first.query(
                "UPDATE x IN Cities SET x.population = 111 "
                "WHERE x.name == 'city0'"
            )
            first.commit()
            with pytest.raises(WriteConflict):
                second.query(
                    "UPDATE x IN Cities SET x.population = 222 "
                    "WHERE x.name == 'city0'"
                )
            # Loser's writes never became visible.
            assert population(first, "city0") == 111
    finally:
        server.stop(drain=False)
