"""Integration tests for the resource governor (the issue's acceptance bar).

Covers: spill byte-identity under a 1/10th memory budget with visible
spill I/O in EXPLAIN ANALYZE, anytime optimization under a ~1ms search
deadline on the paper's Query 3, typed timeouts/cancellation/admission,
the degrade-to-scan replan on index corruption, the stale-I/O-scope
regression, and a 200-round chaos sweep at 5% transient fault rate.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Database
from repro.errors import (
    AdmissionRejected,
    GovernorError,
    QueryCancelled,
    QueryTimeout,
    StorageFaultError,
)
from repro.governor.admission import AdmissionController
from repro.governor.context import QueryContext
from repro.governor.faults import FaultPlan
from repro.governor.spill import approx_row_bytes
from repro.obs.tracer import Tracer
from repro.optimizer.config import (
    ASSEMBLY,
    MERGE_JOIN,
    NESTED_LOOPS,
    POINTER_JOIN,
    WARM_START_ASSEMBLY,
)

QUERY_3 = (
    'SELECT c.mayor.age, c.name FROM City c IN Cities '
    'WHERE c.mayor.name == "Joe"'
)
ORDER_BY_QUERY = "SELECT c.name, c.population FROM City c IN Cities ORDER BY c.name"
JOIN_QUERY = (
    "SELECT e.name, d.name FROM Employee e IN Employees, "
    "Department d IN extent(Department) WHERE e.department == d"
)


def _tenth_of_input_budget(db, rows) -> int:
    """A budget of one tenth of the materialized input's footprint."""
    return max(1, sum(approx_row_bytes(row) for row in rows) // 10)


class TestSpillByteIdentity:
    def test_order_by_spills_and_matches_exactly(self, fresh_db):
        reference = fresh_db.query(ORDER_BY_QUERY, use_cache=False)
        budget = _tenth_of_input_budget(fresh_db, reference.rows)
        governed = fresh_db.query(
            ORDER_BY_QUERY, use_cache=False, options={"$memory": budget}
        )
        assert governed.rows == reference.rows  # exact sequence, ties included
        assert governed.execution.spill_page_writes > 0
        assert governed.execution.spill_page_reads > 0

    def test_hash_join_spills_and_matches_exactly(self, fresh_db):
        # Pin the plan to Hybrid Hash Join so the spill path (not a plan
        # change) is what the budget exercises.
        config = fresh_db.config.without(
            ASSEMBLY, POINTER_JOIN, WARM_START_ASSEMBLY, NESTED_LOOPS,
            MERGE_JOIN,
        )
        optimization = fresh_db.optimize(JOIN_QUERY, config=config)
        assert "Hash Join" in optimization.plan.pretty()
        reference = fresh_db.execute_plan(optimization.plan)
        # 1/10th of the *build input* (the join's first child), so the
        # build side cannot fit and Grace partitioning must kick in.
        join_node = next(
            node
            for node in optimization.plan.walk()
            if "Hash Join" in node.describe()
        )
        build_rows = fresh_db.execute_plan(join_node.children[0]).rows
        budget = _tenth_of_input_budget(fresh_db, build_rows)
        governed = fresh_db.execute_plan(
            optimization.plan, ctx=QueryContext(memory_bytes=budget)
        )
        assert governed.rows == reference.rows
        assert governed.spill_page_writes > 0

    def test_explain_analyze_shows_spill_io(self, fresh_db):
        reference = fresh_db.query(ORDER_BY_QUERY, use_cache=False)
        budget = _tenth_of_input_budget(fresh_db, reference.rows)
        report = fresh_db.explain_analyze(
            ORDER_BY_QUERY, governor=QueryContext(memory_bytes=budget)
        )
        rendered = report.render()
        assert "spill" in rendered, rendered
        spilling = [
            node for node in report.root.walk() if node.spill_writes > 0
        ]
        assert spilling, "some operator must report spill writes"
        assert all(node.spill_reads > 0 for node in spilling)
        assert '"spill_writes"' in report.to_json()

    def test_budget_also_steers_the_cost_model(self, fresh_db):
        # The same budget reaches optimizer/cost.py: a budgeted sort is
        # costed with spill I/O, so its estimate strictly exceeds the
        # unbudgeted estimate of the same plan shape.
        free = fresh_db.optimize(ORDER_BY_QUERY)
        tight = fresh_db.optimize(
            ORDER_BY_QUERY,
            governor=QueryContext(memory_bytes=2048),
        )
        assert tight.cost.total > free.cost.total


class TestAnytimeSearch:
    def test_query3_millisecond_search_deadline_still_correct(self, fresh_db):
        reference = fresh_db.query(QUERY_3, use_cache=False)
        tracer = Tracer()
        ctx = QueryContext(search_timeout_ms=0.001, tracer=tracer)
        governed = fresh_db.query(QUERY_3, use_cache=False, governor=ctx)
        assert sorted(map(repr, governed.rows)) == sorted(
            map(repr, reference.rows)
        )
        assert "search_timeout" in ctx.degraded
        degraded_events = [
            e for e in tracer.events if e.category == "degraded"
        ]
        assert degraded_events, "degradation must be visible in the trace"

    def test_order_by_survives_search_deadline(self, fresh_db):
        reference = fresh_db.query(ORDER_BY_QUERY, use_cache=False)
        ctx = QueryContext(search_timeout_ms=0.001)
        governed = fresh_db.query(ORDER_BY_QUERY, use_cache=False, governor=ctx)
        assert governed.rows == reference.rows  # order respected by fallback
        assert "search_timeout" in ctx.degraded

    def test_degraded_plans_are_not_cached(self, fresh_db):
        ctx = QueryContext(search_timeout_ms=0.001)
        degraded = fresh_db.query(QUERY_3, governor=ctx)
        assert degraded.cache.outcome == "bypass"
        clean = fresh_db.query(QUERY_3)
        assert clean.cache.outcome == "miss"


class TestTypedFailures:
    def test_expired_deadline_raises_query_timeout(self, fresh_db):
        with pytest.raises(QueryTimeout):
            fresh_db.query(
                ORDER_BY_QUERY, use_cache=False, options={"$timeout": 0.00001}
            )

    def test_cancel_raises_query_cancelled(self, fresh_db):
        ctx = QueryContext()
        ctx.cancel()
        with pytest.raises(QueryCancelled):
            fresh_db.query(ORDER_BY_QUERY, use_cache=False, governor=ctx)

    def test_timeout_is_a_governor_error(self):
        assert issubclass(QueryTimeout, GovernorError)
        assert issubclass(QueryCancelled, GovernorError)
        assert issubclass(AdmissionRejected, GovernorError)
        assert issubclass(StorageFaultError, GovernorError)

    def test_admission_rejects_typed_when_saturated(self, fresh_db):
        fresh_db.admission = AdmissionController(1, max_wait_ms=5.0)
        with fresh_db.admission.admit():  # saturate the only slot
            with pytest.raises(AdmissionRejected):
                fresh_db.query(QUERY_3, use_cache=False)
        # Slot released: the same query now runs.
        assert fresh_db.query(QUERY_3, use_cache=False).rows

    def test_exhausted_retries_raise_storage_fault(self, fresh_db):
        ctx = QueryContext(
            fault_plan=FaultPlan(seed=0, read_error_prob=1.0)
        )
        with pytest.raises(StorageFaultError):
            fresh_db.query(ORDER_BY_QUERY, use_cache=False, governor=ctx)


class TestFaultTolerance:
    def test_transient_faults_are_retried_to_the_right_answer(self, fresh_db):
        reference = fresh_db.query(ORDER_BY_QUERY, use_cache=False)
        ctx = QueryContext(
            fault_plan=FaultPlan(seed=9, read_error_prob=0.2)
        )
        governed = fresh_db.query(ORDER_BY_QUERY, use_cache=False, governor=ctx)
        assert governed.rows == reference.rows
        assert ctx.faults.stats.transient_errors > 0
        assert ctx.faults.stats.backoff_ms > 0.0

    def test_corrupt_index_degrades_to_scan(self, fresh_db):
        fresh_db.create_index("ix_mayor", "Cities", ("mayor", "name"))
        reference = fresh_db.query(QUERY_3, use_cache=False)
        assert "Index Scan" in reference.plan.pretty()
        ctx = QueryContext(
            fault_plan=FaultPlan(seed=1, corrupt_index_prob=1.0)
        )
        governed = fresh_db.query(QUERY_3, use_cache=False, governor=ctx)
        assert "Index Scan" not in governed.plan.pretty()
        assert sorted(map(repr, governed.rows)) == sorted(
            map(repr, reference.rows)
        )
        assert "index_corruption" in ctx.degraded


class TestScopeUnwinding:
    """Satellite (a): a failed query must leave no stale I/O scopes."""

    def test_failed_query_leaves_no_stale_scopes(self, fresh_db):
        buffer = fresh_db.store.buffer
        assert buffer.io_scope_depth == 0
        ctx = QueryContext(fault_plan=FaultPlan(seed=0, read_error_prob=1.0))
        with pytest.raises(StorageFaultError):
            fresh_db.explain_analyze(ORDER_BY_QUERY, governor=ctx)
        assert buffer.io_scope_depth == 0
        assert buffer.faults is None  # injector uninstalled
        # The next (instrumented) query on this thread is unaffected.
        report = fresh_db.explain_analyze(ORDER_BY_QUERY)
        assert "act" in report.render()

    def test_mid_stream_cancellation_unwinds_scopes(self, fresh_db):
        buffer = fresh_db.store.buffer
        ctx = QueryContext()
        ctx.cancel()
        with pytest.raises(QueryCancelled):
            fresh_db.explain_analyze(ORDER_BY_QUERY, governor=ctx)
        assert buffer.io_scope_depth == 0


class TestChaosSweep:
    def test_200_rounds_at_5_percent_fault_rate(self):
        from repro.fuzz.chaos import chaos_fuzz

        stats = chaos_fuzz(seed=20260806, iterations=200, fault_rate=0.05)
        assert stats.iterations == 200
        assert stats.ok, "\n".join(str(m) for m in stats.mismatches)
        # Every non-skipped case either matched the oracle or failed typed.
        assert (
            stats.matched + stats.typed_failures + stats.skipped
            == stats.iterations
        )
        assert stats.matched > 0

    def test_no_exchange_threads_leak_under_parallel_faults(self, fresh_db):
        before = {
            t.name
            for t in threading.enumerate()
            if t.name.startswith("exchange-worker")
        }
        ctx = QueryContext(fault_plan=FaultPlan(seed=2, read_error_prob=1.0))
        with pytest.raises(GovernorError):
            fresh_db.query(
                ORDER_BY_QUERY,
                use_cache=False,
                parallelism=3,
                governor=ctx,
            )
        deadline = threading.Event()
        for _ in range(200):
            leaked = {
                t.name
                for t in threading.enumerate()
                if t.is_alive() and t.name.startswith("exchange-worker")
            } - before
            if not leaked:
                break
            deadline.wait(0.01)
        assert not leaked
