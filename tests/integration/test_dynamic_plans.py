"""Integration tests for dynamic plan selection.

ObjectStore's capability, reproduced cost-based: plans are compiled for
every index-availability scenario and selected at run time, so indexes
can be added or dropped "without having to recompile".
"""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.dynamic import MAX_DYNAMIC_INDEXES
from repro.optimizer.plans import IndexScanNode

from tests.conftest import QUERY_2, QUERY_4


class TestCompilation:
    def test_all_scenarios_compiled(self, indexed_db):
        plan = indexed_db.dynamic_plan(QUERY_4)
        # Three catalog indexes -> 8 scenarios.
        assert len(plan.scenarios) == 8
        assert plan.considered == {
            "ix_cities_mayor_name",
            "ix_tasks_time",
            "ix_employees_name",
        }

    def test_scenarios_use_only_available_indexes(self, indexed_db):
        plan = indexed_db.dynamic_plan(QUERY_2)
        for key, scenario_plan in plan.scenarios.items():
            used = {
                n.index.name
                for n in scenario_plan.walk()
                if isinstance(n, IndexScanNode)
            }
            assert used <= key

    def test_distinct_plans_fewer_than_scenarios(self, indexed_db):
        """Most subsets share a plan — only the relevant index matters."""
        plan = indexed_db.dynamic_plan(QUERY_2)
        assert 1 <= plan.distinct_plans < len(plan.scenarios)

    def test_index_cap(self, indexed_db):
        too_many = tuple(f"ix{i}" for i in range(MAX_DYNAMIC_INDEXES + 1))
        with pytest.raises(OptimizerError):
            indexed_db.dynamic_plan(QUERY_2, indexes=too_many)

    def test_describe_renders(self, indexed_db):
        text = indexed_db.dynamic_plan(QUERY_2).describe()
        assert "scenarios" in text
        assert "(no indexes)" in text


class TestRuntimeSelection:
    def test_selection_tracks_index_drops(self, fresh_db):
        fresh_db.create_index("ix_q2", "Cities", ("mayor", "name"))
        compiled = fresh_db.dynamic_plan(QUERY_2)

        chosen_with = compiled.choose_for(fresh_db.catalog)
        assert any(
            isinstance(n, IndexScanNode) for n in chosen_with.walk()
        )

        fresh_db.drop_index("ix_q2")  # no recompilation...
        chosen_without = compiled.choose_for(fresh_db.catalog)
        assert not any(
            isinstance(n, IndexScanNode) for n in chosen_without.walk()
        )

    def test_both_selections_execute_to_same_rows(self, fresh_db):
        fresh_db.create_index("ix_q2", "Cities", ("mayor", "name"))
        compiled = fresh_db.dynamic_plan(QUERY_2)
        with_index = fresh_db.execute_dynamic(compiled)
        fresh_db.drop_index("ix_q2")
        without_index = fresh_db.execute_dynamic(compiled)
        key = lambda rows: sorted(r["c"].oid for r in rows)
        assert key(with_index.rows) == key(without_index.rows)

    def test_unknown_scenario_rejected(self, indexed_db):
        compiled = indexed_db.dynamic_plan(
            QUERY_2, indexes=("ix_cities_mayor_name",)
        )
        # Restricting `considered` means foreign names are ignored, and
        # every subset of the considered set is compiled.
        plan = compiled.choose(frozenset({"ix_tasks_time"}))
        assert plan is compiled.scenarios[frozenset()]

    def test_scenario_plans_are_cost_based(self, indexed_db):
        """Each scenario's plan is optimal for that scenario — the 'Both'
        scenario must NOT greedily use the employee name index."""
        compiled = indexed_db.dynamic_plan(
            QUERY_4, indexes=("ix_tasks_time", "ix_employees_name")
        )
        both = compiled.scenarios[
            frozenset({"ix_tasks_time", "ix_employees_name"})
        ]
        used = {
            n.index.name for n in both.walk() if isinstance(n, IndexScanNode)
        }
        # At test scale the time index may not even pay for itself, but a
        # greedy optimizer would always grab the name index; ours must not.
        assert "ix_employees_name" not in used
