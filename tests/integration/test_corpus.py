"""Replay every minimized fuzz repro in ``tests/corpus/`` — forever.

Each ``repro-*.json`` file is a shrunk (world, query) pair that once
exposed a real divergence between two execution configurations (see the
``note`` inside each file); ``repro-dml-*.json`` files are (world,
write-batch) pairs for the DML-interleaved oracle, and
``repro-crash-*.json`` files are (world, write-batch, crash-plan)
triples for the crash-recovery oracle.  This collector rebuilds each
world from scratch and re-runs the matching differential oracle on it,
so a regression of any pinned bug fails loudly with the configuration
that diverged.
"""

from pathlib import Path

import pytest

from repro.fuzz import build_database, corpus_files, load_repro, run_case
from repro.fuzz.crash import load_crash_repro, run_crash_case
from repro.fuzz.dml import load_dml_repro, run_dml_case

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ALL_FILES = corpus_files(CORPUS_DIR)
DML_CORPUS = [p for p in ALL_FILES if p.stem.startswith("repro-dml-")]
CRASH_CORPUS = [p for p in ALL_FILES if p.stem.startswith("repro-crash-")]
CORPUS = [
    p
    for p in ALL_FILES
    if not p.stem.startswith(("repro-dml-", "repro-crash-"))
]


def test_corpus_present():
    """The shipped corpus must never silently vanish from collection."""
    assert len(CORPUS) >= 18
    assert len(DML_CORPUS) >= 2


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_case_stays_fixed(path):
    world, query = load_repro(path)
    db = build_database(world)
    outcome = run_case(db, query)
    assert not outcome.skipped, f"repro query no longer plans: {outcome.query}"
    assert not outcome.mismatches, "\n".join(
        str(m) for m in outcome.mismatches
    )
    assert outcome.pairs_run > 0


@pytest.mark.parametrize("path", DML_CORPUS, ids=lambda p: p.stem)
def test_dml_corpus_case_stays_fixed(path):
    world, batch = load_dml_repro(path)
    assert batch.ops, "pinned DML case lost its statements"
    mismatches = run_dml_case(world, batch)
    assert not mismatches, "\n".join(str(m) for m in mismatches)


@pytest.mark.parametrize("path", CRASH_CORPUS, ids=lambda p: p.stem)
def test_crash_corpus_case_stays_fixed(path):
    world, batch, plan, checkpoint_every = load_crash_repro(path)
    assert batch.ops, "pinned crash case lost its statements"
    divergences = run_crash_case(world, batch, plan, checkpoint_every)
    assert not divergences, "\n".join(str(d) for d in divergences)
