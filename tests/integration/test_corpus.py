"""Replay every minimized fuzz repro in ``tests/corpus/`` — forever.

Each corpus file is a shrunk (world, query) pair that once exposed a
real divergence between two execution configurations (see the ``note``
inside each file).  This collector rebuilds the world from scratch and
re-runs the full differential oracle on it, so a regression of any
pinned bug fails loudly with the configuration pair that diverged.
"""

from pathlib import Path

import pytest

from repro.fuzz import build_database, corpus_files, load_repro, run_case

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
CORPUS = corpus_files(CORPUS_DIR)


def test_corpus_present():
    """The shipped corpus must never silently vanish from collection."""
    assert len(CORPUS) >= 18


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_case_stays_fixed(path):
    world, query = load_repro(path)
    db = build_database(world)
    outcome = run_case(db, query)
    assert not outcome.skipped, f"repro query no longer plans: {outcome.query}"
    assert not outcome.mismatches, "\n".join(
        str(m) for m in outcome.mismatches
    )
    assert outcome.pairs_run > 0
