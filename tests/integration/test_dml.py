"""DML through the full pipeline: parser → optimizer → engine → MVCC.

INSERT/UPDATE/DELETE statements run through ``Database.query`` exactly
like reads — UPDATE/DELETE target selection is planned and cached by the
same optimizer — and commit through the storage layer's snapshot
machinery.  These tests pin the API-level contract: auto-commit CSNs,
explicit transactions with read-your-own-writes, typed conflicts, and
catalog data-version bookkeeping feeding the plan cache.
"""

import pytest

from repro.api import Database
from repro.engine.dml import DmlResult
from repro.errors import (
    QuerySyntaxError,
    TransactionError,
    WriteConflict,
)

SCALE = 0.02


@pytest.fixture()
def db() -> Database:
    """Private mutable database (DML tests must never share state)."""
    return Database.sample(scale=SCALE)


def city_population(db, name, transaction=None):
    """One city's population via the query surface."""
    result = db.query(
        f"SELECT x.population FROM x IN Cities WHERE x.name == '{name}'",
        transaction=transaction,
    )
    assert len(result.rows) == 1
    return result.rows[0]["x.population"]


class TestAutoCommit:
    def test_insert_is_immediately_visible(self, db):
        before = len(db.query("SELECT x.name FROM x IN Cities").rows)
        result = db.query(
            "INSERT INTO Cities (name, population) VALUES ('dmlville', 42)"
        )
        assert isinstance(result, DmlResult)
        assert result.operation == "insert"
        assert result.affected == 1
        assert result.csn is not None
        rows = db.query(
            "SELECT x.population FROM x IN Cities WHERE x.name == 'dmlville'"
        ).rows
        assert rows == [{"x.population": 42}]
        assert len(db.query("SELECT x.name FROM x IN Cities").rows) == before + 1

    def test_insert_into_named_set_joins_extent(self, db):
        db.query(
            "INSERT INTO Employees (name, age, salary) "
            "VALUES ('extperson', 30, 1000)"
        )
        rows = db.query(
            "SELECT x.name FROM x IN extent(Employee) "
            "WHERE x.name == 'extperson'"
        ).rows
        assert rows == [{"x.name": "extperson"}]

    def test_update_with_predicate(self, db):
        result = db.query(
            "UPDATE x IN Cities SET x.population = 7 "
            "WHERE x.name == 'city0'"
        )
        assert result.operation == "update"
        assert result.affected == 1
        assert city_population(db, "city0") == 7

    def test_update_through_reference_path(self, db):
        """SET values may be paths evaluated per target object."""
        result = db.query(
            "UPDATE e IN Employees SET e.salary = e.department.floor"
        )
        assert result.affected == len(
            db.query("SELECT e.name FROM e IN Employees").rows
        )
        rows = db.query(
            "SELECT e.salary, e.department.floor FROM e IN Employees"
        ).rows
        assert all(r["e.salary"] == r["e.department.floor"] for r in rows)

    def test_delete_removes_membership_and_data(self, db):
        before = len(db.query("SELECT x.name FROM x IN Cities").rows)
        result = db.query("DELETE x IN Cities WHERE x.name == 'city3'")
        assert result.operation == "delete"
        assert result.affected == 1
        rows = db.query(
            "SELECT x.name FROM x IN Cities WHERE x.name == 'city3'"
        ).rows
        assert rows == []
        assert len(db.query("SELECT x.name FROM x IN Cities").rows) == before - 1

    def test_each_commit_advances_csn(self, db):
        first = db.query(
            "INSERT INTO Cities (name, population) VALUES ('a1', 1)"
        ).csn
        second = db.query(
            "INSERT INTO Cities (name, population) VALUES ('a2', 2)"
        ).csn
        assert second == first + 1

    def test_malformed_dml_is_a_syntax_error(self, db):
        with pytest.raises(QuerySyntaxError):
            db.query("INSERT INTO Cities VALUES ('x')")


class TestTransactions:
    def test_read_your_own_writes_until_commit(self, db):
        txn = db.begin()
        db.query(
            "INSERT INTO Cities (name, population) VALUES ('mine', 5)",
            transaction=txn,
        )
        inside = db.query(
            "SELECT x.name FROM x IN Cities WHERE x.name == 'mine'",
            transaction=txn,
        ).rows
        outside = db.query(
            "SELECT x.name FROM x IN Cities WHERE x.name == 'mine'"
        ).rows
        assert inside == [{"x.name": "mine"}]
        assert outside == []
        txn.commit()
        after = db.query(
            "SELECT x.name FROM x IN Cities WHERE x.name == 'mine'"
        ).rows
        assert after == [{"x.name": "mine"}]

    def test_buffered_dml_reports_no_csn(self, db):
        txn = db.begin()
        result = db.query(
            "UPDATE x IN Cities SET x.population = 1 WHERE x.name == 'city0'",
            transaction=txn,
        )
        assert result.csn is None  # not committed yet
        txn.rollback()

    def test_rollback_discards_everything(self, db):
        original = city_population(db, "city1")
        txn = db.begin()
        db.query(
            "UPDATE x IN Cities SET x.population = 0 WHERE x.name == 'city1'",
            transaction=txn,
        )
        db.query("DELETE x IN Cities WHERE x.name == 'city2'", transaction=txn)
        txn.rollback()
        assert city_population(db, "city1") == original
        assert city_population(db, "city2") is not None

    def test_first_committer_wins_is_typed(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.query(
            "UPDATE x IN Cities SET x.population = 1 WHERE x.name == 'city0'",
            transaction=t1,
        )
        t1.commit()
        with pytest.raises(WriteConflict):
            db.query(
                "UPDATE x IN Cities SET x.population = 2 "
                "WHERE x.name == 'city0'",
                transaction=t2,
            )
        assert t2.status == "rolled-back"
        assert city_population(db, "city0") == 1

    def test_finished_transaction_rejects_queries(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            db.query(
                "INSERT INTO Cities (name, population) VALUES ('x', 1)",
                transaction=txn,
            )

    def test_snapshot_pinned_reader_misses_later_commit(self, db):
        reader = db.begin()
        baseline = db.query(
            "SELECT x.name FROM x IN Cities", transaction=reader
        ).rows
        db.query("INSERT INTO Cities (name, population) VALUES ('late', 9)")
        pinned = db.query(
            "SELECT x.name FROM x IN Cities", transaction=reader
        ).rows
        assert pinned == baseline
        reader.rollback()
        fresh = db.query("SELECT x.name FROM x IN Cities").rows
        assert len(fresh) == len(baseline) + 1


class TestCatalogBookkeeping:
    def test_commit_bumps_data_version(self, db):
        v0 = db.catalog.data_version("Cities")
        db.query("INSERT INTO Cities (name, population) VALUES ('dv', 1)")
        assert db.catalog.data_version("Cities") == v0 + 1
        # Inserting into a named set advances the element extent too.
        db.query(
            "INSERT INTO Employees (name, age, salary) VALUES ('dv2', 1, 2)"
        )
        assert db.catalog.data_version("extent(Employee)") >= 1

    def test_update_does_not_shift_cardinality(self, db):
        db.query("UPDATE x IN Cities SET x.population = 0")
        stats = db.catalog.stats("Cities")
        assert stats.cardinality == len(
            db.query("SELECT x.name FROM x IN Cities").rows
        )


class TestReviewRegressions:
    """Pins for bugs found in review of the serving-tier PR."""

    def test_execute_false_dml_is_rejected_without_writing(self, db):
        before = len(db.query("SELECT x.name FROM x IN Cities").rows)
        csn_before = db.store.mvcc.current_csn
        with pytest.raises(TransactionError):
            db.query(
                "INSERT INTO Cities (name, population) VALUES ('dryrun', 1)",
                execute=False,
            )
        assert db.store.mvcc.current_csn == csn_before
        assert len(db.query("SELECT x.name FROM x IN Cities").rows) == before

    def test_doomed_transaction_cannot_serve_reads(self, db):
        """An eager conflict rolls the txn back; later reads through the
        dead handle raise instead of silently serving discarded writes."""
        original = city_population(db, "city1")
        t1, t2 = db.begin(), db.begin()
        db.query(
            "UPDATE x IN Cities SET x.population = 777 "
            "WHERE x.name == 'city1'",
            transaction=t2,
        )
        db.query(
            "UPDATE x IN Cities SET x.population = 1 WHERE x.name == 'city0'",
            transaction=t1,
        )
        t1.commit()
        with pytest.raises(WriteConflict):
            db.query(
                "UPDATE x IN Cities SET x.population = 2 "
                "WHERE x.name == 'city0'",
                transaction=t2,
            )
        assert t2.status == "rolled-back"
        with pytest.raises(TransactionError):
            db.query("SELECT x.name FROM x IN Cities", transaction=t2)
        # The buffered city1 write was discarded with the rollback.
        assert city_population(db, "city1") == original
