"""Concurrent prepared-query executions must not cross-contaminate.

``rebind_plan`` re-binds a *cached* plan's parameter slots for each
execution.  The implementation is copy-on-write (``dataclasses.replace``
along changed paths only) — it must never mutate the cached plan, or two
threads binding different ``$params`` against the same entry would see
each other's constants.  These tests hammer one prepared query from
several threads and check (a) every thread always gets the rows its own
parameter selects, and (b) the cached plan is bit-identical afterwards.
"""

import threading

from repro.cache.fingerprint import rebind_plan
from repro.engine.tuples import row_key

Q_PREPARED = "SELECT * FROM City c IN Cities WHERE c.mayor.name == $who"
Q_LITERAL = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "{who}"'

NAMES = ("Joe", "Fred", "Ann", "Mary")


def _bag(rows):
    keys = [row_key(r) for r in rows]
    return sorted(keys, key=repr)


class TestConcurrentRebinds:
    def test_threads_with_different_params_stay_isolated(self, fresh_db):
        expected = {
            who: _bag(fresh_db.query(Q_LITERAL.format(who=who),
                                     use_cache=False).rows)
            for who in NAMES
        }
        prepared = fresh_db.prepare(Q_PREPARED)
        prepared.execute(who=NAMES[0])  # warm the cache: one entry
        (entry,) = fresh_db.plan_cache.entries()
        snapshot = repr(entry.optimization.plan)

        failures = []

        def hammer(who: str) -> None:
            try:
                for _ in range(10):
                    rows = prepared.execute(who=who).rows
                    if _bag(rows) != expected[who]:
                        failures.append(
                            f"{who}: got rows for someone else's binding"
                        )
                        return
            except Exception as exc:  # noqa: BLE001 - worker thread: any
                # crash must be surfaced in the main thread's assertion
                failures.append(f"{who}: {exc!r}")

        threads = [
            threading.Thread(target=hammer, args=(who,)) for who in NAMES
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, "\n".join(failures)
        assert repr(entry.optimization.plan) == snapshot, (
            "rebind_plan mutated the cached plan"
        )

    def test_rebind_never_mutates_its_input(self, fresh_db):
        prepared = fresh_db.prepare(Q_PREPARED)
        prepared.execute(who="Joe")
        (entry,) = fresh_db.plan_cache.entries()
        cached = entry.optimization.plan
        before = repr(cached)
        (slot,) = prepared.parameterized.slots
        first = rebind_plan(cached, {slot.index: "Fred"})
        second = rebind_plan(cached, {slot.index: "Ann"})
        assert repr(cached) == before
        assert repr(first) != repr(second)  # bindings really landed
        assert "Fred" in repr(first) and "Ann" in repr(second)
