"""Integration tests for the plan cache, prepared queries, and
catalog-version invalidation.

The contract under test: repeated query shapes skip the optimizer but
NEVER return stale plans — any catalog change that could alter the
optimal plan (index DDL, statistics refresh) must produce a miss and a
re-optimization, while results always match an uncached run.
"""

import pytest

from repro.api import Database
from repro.cache.plan_cache import PlanCache
from repro.errors import ParameterBindingError, SimplificationError
from repro.optimizer.plans import IndexScanNode

from tests.conftest import SCALE

Q_MAYOR = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "{name}"'
Q_PREPARED = "SELECT * FROM City c IN Cities WHERE c.mayor.name == $who"


def uses_index(plan) -> bool:
    return any(isinstance(node, IndexScanNode) for node in plan.walk())


class TestTransparentCaching:
    def test_second_query_hits(self, fresh_db):
        first = fresh_db.query(Q_MAYOR.format(name="Joe"))
        second = fresh_db.query(Q_MAYOR.format(name="Fred"))
        assert first.cache.outcome == "miss"
        assert second.cache.outcome == "hit"
        assert fresh_db.plan_cache.stats.hits == 1

    def test_rebound_plan_gives_correct_rows(self, fresh_db):
        fresh_db.query(Q_MAYOR.format(name="Joe"))
        cached = fresh_db.query(Q_MAYOR.format(name="Fred"))
        uncached = fresh_db.query(Q_MAYOR.format(name="Fred"), use_cache=False)
        assert cached.rows == uncached.rows

    def test_opt_out_flag(self, fresh_db):
        fresh_db.query(Q_MAYOR.format(name="Joe"), use_cache=False)
        assert len(fresh_db.plan_cache) == 0
        result = fresh_db.query(Q_MAYOR.format(name="Joe"), use_cache=False)
        assert result.cache.outcome == "bypass"

    def test_database_level_opt_out(self, fresh_db):
        fresh_db.cache_plans = False
        fresh_db.query(Q_MAYOR.format(name="Joe"))
        assert len(fresh_db.plan_cache) == 0

    def test_hit_reports_saved_time(self, fresh_db):
        fresh_db.query(Q_MAYOR.format(name="Joe"))
        hit = fresh_db.query(Q_MAYOR.format(name="Fred"))
        assert hit.cache.saved_seconds > 0
        assert fresh_db.plan_cache.stats.optimization_seconds_saved > 0

    def test_different_config_is_a_different_entry(self, fresh_db):
        from repro.optimizer.config import POINTER_JOIN

        fresh_db.query(Q_MAYOR.format(name="Joe"))
        other = fresh_db.query(
            Q_MAYOR.format(name="Joe"),
            config=fresh_db.config.without(POINTER_JOIN),
        )
        assert other.cache.outcome == "miss"

    def test_lru_eviction(self):
        db = Database.sample(scale=SCALE, populate=False)
        db.plan_cache = PlanCache(capacity=2)
        db.query('SELECT * FROM City c IN Cities WHERE c.mayor.name == "a"')
        db.query("SELECT * FROM Task t IN Tasks WHERE t.time == 1")
        db.query("SELECT e.name FROM Employee e IN Employees")
        assert len(db.plan_cache) == 2
        assert db.plan_cache.stats.evictions == 1

    def test_eviction_counters_under_churn(self):
        """Distinct query shapes churning a tiny cache: every insert past
        capacity evicts exactly one entry, stores count every insert, and
        occupancy never exceeds capacity."""
        db = Database.sample(scale=SCALE, populate=False)
        db.plan_cache = PlanCache(capacity=3)
        shapes = [
            "SELECT e.name FROM Employee e IN Employees WHERE e.age == {k}",
            "SELECT e.name FROM Employee e IN Employees WHERE e.age < {k}",
            "SELECT e.name FROM Employee e IN Employees WHERE e.age > {k}",
            "SELECT e.name FROM Employee e IN Employees WHERE e.age <= {k}",
            "SELECT e.name FROM Employee e IN Employees WHERE e.age >= {k}",
            "SELECT e.name FROM Employee e IN Employees WHERE e.age != {k}",
        ]
        for shape in shapes:
            db.query(shape.format(k=1), execute=False)
            assert len(db.plan_cache) <= 3
        stats = db.plan_cache.stats
        assert stats.stores == len(shapes)
        assert stats.evictions == len(shapes) - 3
        assert len(db.plan_cache) == 3
        # Churn did not corrupt LRU order: the three newest shapes remain
        # and still hit (constants differ, so these are re-bind hits).
        hits_before = stats.hits
        for shape in shapes[-3:]:
            result = db.query(shape.format(k=2), execute=False)
            assert result.cache.outcome == "hit"
        assert stats.hits == hits_before + 3
        assert stats.evictions == len(shapes) - 3  # hits never evict


class TestInvalidation:
    def test_create_index_invalidates_and_replans(self, fresh_db):
        before = fresh_db.query(Q_MAYOR.format(name="Joe"))
        assert not uses_index(before.plan)
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        after = fresh_db.query(Q_MAYOR.format(name="Joe"))
        assert after.cache.outcome == "miss"
        assert fresh_db.plan_cache.stats.invalidations == 1
        assert uses_index(after.plan)
        assert after.rows == before.rows

    def test_drop_index_invalidates(self, fresh_db):
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        with_index = fresh_db.query(Q_MAYOR.format(name="Joe"))
        assert uses_index(with_index.plan)
        fresh_db.drop_index("ix_q")
        after = fresh_db.query(Q_MAYOR.format(name="Joe"))
        assert after.cache.outcome == "miss"
        assert not uses_index(after.plan)
        assert after.rows == with_index.rows

    def test_analyze_invalidates(self, fresh_db):
        fresh_db.query("SELECT * FROM Task t IN Tasks WHERE t.time == 100")
        fresh_db.analyze("Tasks")
        again = fresh_db.query("SELECT * FROM Task t IN Tasks WHERE t.time == 100")
        assert again.cache.outcome == "miss"
        assert fresh_db.plan_cache.stats.invalidations == 1

    def test_collect_type_statistics_invalidates(self, fresh_db):
        fresh_db.query(Q_MAYOR.format(name="Joe"))
        fresh_db.collect_type_statistics()
        again = fresh_db.query(Q_MAYOR.format(name="Joe"))
        assert again.cache.outcome == "miss"


class TestPreparedQueries:
    def test_prepare_execute_reuses_plan(self, fresh_db):
        prepared = fresh_db.prepare(Q_PREPARED)
        assert prepared.param_names == ("who",)
        first = prepared.execute(who="Joe")
        second = prepared.execute(who="Fred")
        assert first.cache.outcome == "miss"
        assert second.cache.outcome == "hit"
        uncached = fresh_db.query(Q_MAYOR.format(name="Fred"), use_cache=False)
        assert second.rows == uncached.rows

    def test_missing_parameter_raises(self, fresh_db):
        prepared = fresh_db.prepare(Q_PREPARED)
        with pytest.raises(ParameterBindingError, match=r"missing \$who"):
            prepared.execute()

    def test_extra_parameter_raises(self, fresh_db):
        prepared = fresh_db.prepare(Q_PREPARED)
        with pytest.raises(ParameterBindingError, match=r"unexpected \$whom"):
            prepared.execute(who="Joe", whom="Fred")

    def test_ill_typed_parameter_raises(self, fresh_db):
        prepared = fresh_db.prepare(Q_PREPARED)
        with pytest.raises(ParameterBindingError, match="unsupported type"):
            prepared.execute(who=True)
        with pytest.raises(ParameterBindingError, match="unsupported type"):
            prepared.execute(who=["Joe"])

    def test_query_rejects_unbound_parameters(self, fresh_db):
        with pytest.raises(ParameterBindingError, match=r"\$who"):
            fresh_db.query(Q_PREPARED)

    def test_optimize_rejects_unbound_parameters(self, fresh_db):
        with pytest.raises(SimplificationError, match=r"\$who"):
            fresh_db.optimize(Q_PREPARED)

    def test_uncacheable_prepared_still_correct(self, fresh_db):
        # Two constant bounds on one term defeat safe reuse; every
        # execution must re-optimize, with correct results.
        prepared = fresh_db.prepare(
            "SELECT * FROM Task t IN Tasks "
            "WHERE t.time == $when AND t.time < 10000"
        )
        assert not prepared.cacheable
        result = prepared.execute(when=100)
        assert result.cache.outcome == "uncacheable"
        uncached = fresh_db.query(
            "SELECT * FROM Task t IN Tasks WHERE t.time == 100 "
            "AND t.time < 10000",
            use_cache=False,
        )
        assert result.rows == uncached.rows
        assert len(fresh_db.plan_cache) == 0

    def test_explain_binds_without_executing(self, fresh_db):
        prepared = fresh_db.prepare(Q_PREPARED)
        text = prepared.explain(who="Joe")
        assert "Joe" in text


class TestDynamicPreparedQueries:
    def test_reselect_on_index_drop_and_recreate(self, fresh_db):
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        prepared = fresh_db.prepare(Q_PREPARED, dynamic=True)

        first = prepared.execute(who="Joe")
        assert first.cache.outcome == "miss"
        assert uses_index(first.plan)

        fresh_db.drop_index("ix_q")
        dropped = prepared.execute(who="Joe")
        assert dropped.cache.outcome == "reselect"
        assert not uses_index(dropped.plan)
        assert dropped.rows == first.rows

        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        recreated = prepared.execute(who="Fred")
        assert recreated.cache.outcome == "reselect"
        assert uses_index(recreated.plan)
        assert fresh_db.plan_cache.stats.reselects == 2

    def test_static_entry_does_not_shadow_dynamic(self, fresh_db):
        # Regression: a static entry cached for the same text/config must
        # not satisfy a dynamic prepared query's first execution, or the
        # scenario compilation is silently skipped.
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        fresh_db.prepare(Q_PREPARED).execute(who="Joe")
        dynamic = fresh_db.prepare(Q_PREPARED, dynamic=True)
        first = dynamic.execute(who="Joe")
        assert first.cache.outcome == "miss"
        fresh_db.drop_index("ix_q")
        assert dynamic.execute(who="Joe").cache.outcome == "reselect"

    def test_new_index_still_invalidates_dynamic_entry(self, fresh_db):
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        prepared = fresh_db.prepare(Q_PREPARED, dynamic=True)
        prepared.execute(who="Joe")
        # An index outside the compiled scenarios: re-selection is not
        # possible, the entry must be invalidated and re-optimized.
        fresh_db.create_index("ix_extra", "Tasks", ("time",))
        result = prepared.execute(who="Joe")
        assert result.cache.outcome == "miss"
        assert fresh_db.plan_cache.stats.invalidations == 1

    def test_analyze_invalidates_dynamic_entry(self, fresh_db):
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        prepared = fresh_db.prepare(Q_PREPARED, dynamic=True)
        prepared.execute(who="Joe")
        fresh_db.analyze("Cities")
        result = prepared.execute(who="Joe")
        assert result.cache.outcome == "miss"


class TestCatalogVersion:
    def test_version_moves_on_ddl_and_stats(self, fresh_db):
        catalog = fresh_db.catalog
        v0 = catalog.version
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        v1 = catalog.version
        assert v1 > v0
        fresh_db.drop_index("ix_q")
        assert catalog.version > v1
        s0 = catalog.stats_version
        fresh_db.analyze("Cities", attributes=("population",))
        assert catalog.stats_version > s0

    def test_index_ddl_leaves_stats_version(self, fresh_db):
        s0 = fresh_db.catalog.stats_version
        fresh_db.create_index("ix_q", "Cities", ("mayor", "name"))
        assert fresh_db.catalog.stats_version == s0
