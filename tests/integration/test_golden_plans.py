"""Golden-plan regression tests.

The exact plan text for the paper's four queries at full scale, pinned.
A failing test here means the optimizer's choice for a *paper figure*
changed — which must be a deliberate decision, not drift from a cost or
rule tweak.  (Figures 6, 8, 10, and 12; Q4 uses pointer join where the
paper drew assembly — see EXPERIMENTS.md.)
"""

import textwrap

import pytest

from repro.lang.parser import parse_query
from repro.optimizer import Optimizer, OptimizerConfig
from repro.optimizer import config as C
from repro.simplify.simplifier import simplify_full

from tests.conftest import QUERY_1, QUERY_2, QUERY_3, QUERY_4


def _plan_text(catalog, sql, config=None):
    simplified = simplify_full(parse_query(sql), catalog)
    result = Optimizer(catalog, config or OptimizerConfig()).optimize(
        simplified.tree,
        result_vars=simplified.result_vars,
        order=simplified.order,
    )
    return result.plan.pretty()


GOLDEN = {
    "Q1": """\
        Alg-Project e.name, e.department.name, e.job.name
          Hybrid Hash Join e.job == e.job.self
            Hybrid Hash Join e.department == e.department.self
              Filter 'Dallas' == e.department.plant.location
                Assembly e.department.plant
                  File Scan extent(Department): e.department
              File Scan Employees: e
            File Scan extent(Job): e.job""",
    "Q2": """\
        Index Scan Cities: c, 'Joe' == c.mayor.name""",
    "Q3": """\
        Alg-Project c.mayor.age, c.name
          Assembly c.mayor (enforcer)
            Index Scan Cities: c, 'Joe' == c.mayor.name""",
    "Q4": """\
        Filter 'Fred' == m.name
          Pointer Join m_ref: m
            Alg-Unnest t.team_members: m_ref
              Index Scan Tasks: t, 100 == t.time""",
}

QUERIES = {"Q1": QUERY_1, "Q2": QUERY_2, "Q3": QUERY_3, "Q4": QUERY_4}


@pytest.mark.parametrize("name", list(GOLDEN))
def test_golden_plan(paper_catalog, name):
    expected = textwrap.dedent(GOLDEN[name])
    assert _plan_text(paper_catalog, QUERIES[name]) == expected


def test_q4_paper_literal_plan(paper_catalog):
    """With the pointer-join rule disabled, Query 4 reproduces Figure 12's
    literal drawing (assembly for the member references)."""
    expected = textwrap.dedent(
        """\
        Filter 'Fred' == m.name
          Assembly m_ref: m
            Alg-Unnest t.team_members: m_ref
              Index Scan Tasks: t, 100 == t.time"""
    )
    got = _plan_text(
        paper_catalog, QUERY_4, OptimizerConfig().without(C.POINTER_JOIN)
    )
    assert got == expected


def test_fig9_literal_plan(paper_catalog):
    """Figure 9's exact rendering under the crippled configuration."""
    expected = textwrap.dedent(
        """\
        Filter 'Joe' == c.mayor.name
          Assembly c.mayor
            File Scan Cities: c"""
    )
    got = _plan_text(
        paper_catalog,
        QUERY_2,
        OptimizerConfig().without(
            C.COLLAPSE_TO_INDEX_SCAN, C.MAT_TO_JOIN, C.POINTER_JOIN
        ),
    )
    assert got == expected
