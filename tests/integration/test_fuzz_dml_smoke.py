"""Quick in-process DML-interleaved differential fuzz with fixed seeds.

Each case applies one seeded batch of INSERT/UPDATE/DELETE statements
(some grouped into explicit transactions) to fresh builds of the same
generated world under every engine configuration — cache off, parallel
execution, restricted rule sets — and requires byte-identical
transcripts: per-statement affected counts, typed error names, commit
CSNs, and totally-ordered reads after every commit.  Fixed seeds keep
tier-1 deterministic; the nightly soak covers fresh seeds at scale.
"""

from repro.fuzz.dml import DML_CONFIGS, dml_fuzz


def test_dml_fuzz_smoke_seed_11():
    stats = dml_fuzz(seed=11, iterations=8, shrink=False)
    assert stats.iterations == 8
    # Every non-skipped case replayed under every configuration.
    assert stats.pairs_run >= (stats.iterations - stats.skipped) * len(
        DML_CONFIGS
    )
    assert stats.ok, "\n".join(str(m) for m in stats.mismatches)


def test_dml_fuzz_smoke_seed_42():
    stats = dml_fuzz(seed=42, iterations=6, shrink=False)
    assert stats.ok, "\n".join(str(m) for m in stats.mismatches)
