"""Maintained type statistics (the paper's Query 1 remedy).

"This example indicates that additional cardinality information should be
maintained whether or not the objects belong to a set or extent, and we
may revisit this issue in a later version of the system."  This suite
covers that revision: `Database.collect_type_statistics` records
(population, pages) for extent-less types, bounding assembly estimates.
"""

import pytest

from repro.errors import CatalogError
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

from tests.conftest import QUERY_1

POINTER_CHASING = OptimizerConfig().without(C.MAT_TO_JOIN)


class TestCollection:
    def test_collects_only_extent_less_types(self, fresh_db):
        collected = fresh_db.collect_type_statistics()
        assert "Plant" in collected
        assert "Employee" not in collected  # has an extent with stats

    def test_population_matches_store(self, fresh_db):
        collected = fresh_db.collect_type_statistics()
        population, pages = collected["Plant"]
        assert population == len(fresh_db.store.segment("Plant").oids)
        # Plant is sparsely clustered: one object per page.
        assert pages == population

    def test_catalog_answers_after_collection(self, fresh_db):
        assert fresh_db.catalog.type_population("Plant") is None
        fresh_db.collect_type_statistics()
        assert fresh_db.catalog.type_population("Plant") is not None
        assert fresh_db.catalog.type_pages("Plant") is not None

    def test_requires_store(self):
        from repro.api import Database

        db = Database.sample(scale=0.02, populate=False)
        with pytest.raises(CatalogError):
            db.collect_type_statistics()

    def test_validation(self, fresh_db):
        with pytest.raises(CatalogError):
            fresh_db.catalog.set_type_population("Plant", -1, 10)
        with pytest.raises(CatalogError):
            fresh_db.catalog.set_type_population("Plant", 10, 0)


class TestEstimationEffect:
    def test_pointer_chasing_estimate_drops(self, fresh_db):
        """With plant population known, 'one fault per employee' becomes
        'bounded by the plant segment' — the paper's predicted payoff."""
        before = fresh_db.optimize(QUERY_1, config=POINTER_CHASING).cost.total
        fresh_db.collect_type_statistics()
        after = fresh_db.optimize(QUERY_1, config=POINTER_CHASING).cost.total
        assert after < before / 2

    def test_results_unchanged(self, fresh_db):
        before = fresh_db.query(QUERY_1).rows
        fresh_db.collect_type_statistics()
        after = fresh_db.query(QUERY_1).rows
        key = lambda rows: sorted(tuple(sorted(r.items())) for r in rows)
        assert key(before) == key(after)

    def test_extent_stats_still_win(self, fresh_db):
        """Maintained stats never override extent statistics."""
        fresh_db.collect_type_statistics()
        assert fresh_db.catalog.type_population("Department") == \
            fresh_db.catalog.cardinality("extent(Department)")
