"""Serving-tier smoke: protocol, sessions, DML over the wire, shutdown.

Starts a real :class:`DatabaseServer` on a loopback socket and drives it
with :class:`ServerClient` — the same path ``.server start`` uses from
the CLI — covering the handshake, the shell-line surface, structured
queries, server-side cursors, remote transactions with typed
``WriteConflict``, admission rejection, and graceful drain.
"""

import pytest

from repro.api import Database
from repro.errors import AdmissionRejected, QuerySyntaxError, WriteConflict
from repro.server import DatabaseServer, ServerClient

SCALE = 0.02


@pytest.fixture()
def server():
    """A running server over a private database; stopped at teardown."""
    db = Database.sample(scale=SCALE)
    srv = DatabaseServer(db, port=0)
    host, port = srv.start()
    try:
        yield srv, host, port
    finally:
        srv.stop(drain=False)


def connect(server_fixture) -> ServerClient:
    _, host, port = server_fixture
    return ServerClient(host, port)


class TestProtocol:
    def test_hello_banner(self, server):
        with connect(server) as client:
            banner = client.hello()
            assert banner["protocol"] == 1
            assert banner["session"] >= 1

    def test_shell_line_shares_cli_surface(self, server):
        with connect(server) as client:
            assert "Cities" in client.line(".catalog")
            assert ".begin" in client.line(".help")

    def test_structured_query_returns_rows(self, server):
        with connect(server) as client:
            payload = client.query(
                "SELECT x.name FROM x IN Cities WHERE x.name == 'city0'"
            )
            assert payload["row_count"] == 1
            assert payload["rows"][0]["x.name"] == "city0"

    def test_cursor_paging_covers_all_rows(self, server):
        with connect(server) as client:
            total = client.query("SELECT x.name FROM x IN Cities")["row_count"]
            cursor = client.query_cursor("SELECT x.name FROM x IN Cities")
            seen = 0
            while True:
                batch = client.fetch(cursor, n=64)
                seen += len(batch["rows"])
                if batch["done"]:
                    break
            assert seen == total

    def test_errors_arrive_typed(self, server):
        with connect(server) as client:
            with pytest.raises(QuerySyntaxError):
                client.query("SELEC oops")
            # The session survives a failed statement.
            assert client.query("SELECT x.name FROM x IN Cities")["row_count"]

    def test_malformed_line_is_protocol_error_not_disconnect(self, server):
        with connect(server) as client:
            client._sock.sendall(b"this is not json\n")
            raw = client._reader.readline()
            assert b"ProtocolError" in raw
            assert client.hello()["ok"]


class TestSessions:
    def test_sessions_are_tracked_and_reaped(self, server):
        srv, _, _ = server
        with connect(server) as a, connect(server) as b:
            a.hello()
            b.hello()
            assert srv.session_count() == 2
            info = srv.session_info()
            assert len(info) == 2
            assert all("session" in line for line in info)

    def test_session_state_is_private(self, server):
        """Prepared statements and settings do not leak across sessions."""
        with connect(server) as a, connect(server) as b:
            a.line(".timeout 1000")
            assert "1000" in a.line(".timeout")
            assert "off" in b.line(".timeout")

    def test_dml_and_transactions_over_the_wire(self, server):
        with connect(server) as client:
            result = client.query(
                "INSERT INTO Cities (name, population) VALUES ('remote', 3)"
            )
            assert result["dml"] == "insert"
            assert result["affected"] == 1
            assert result["csn"] is not None
            client.begin()
            client.query(
                "UPDATE x IN Cities SET x.population = 9 "
                "WHERE x.name == 'remote'"
            )
            client.commit()
            rows = client.query(
                "SELECT x.population FROM x IN Cities "
                "WHERE x.name == 'remote'"
            )["rows"]
            assert rows == [{"x.population": 9}]

    def test_write_conflict_is_typed_across_the_wire(self, server):
        with connect(server) as winner, connect(server) as loser:
            loser.begin()
            # Pin the loser's snapshot before the winner commits.
            loser.query("SELECT x.name FROM x IN Cities WHERE x.name == 'x'")
            winner.begin()
            winner.query(
                "UPDATE x IN Cities SET x.population = 1 "
                "WHERE x.name == 'city0'"
            )
            winner.commit()
            with pytest.raises(WriteConflict):
                loser.query(
                    "UPDATE x IN Cities SET x.population = 2 "
                    "WHERE x.name == 'city0'"
                )

    def test_disconnect_rolls_back_open_transaction(self, server):
        srv, host, port = server
        client = ServerClient(host, port)
        client.begin()
        client.query(
            "UPDATE x IN Cities SET x.population = 0 WHERE x.name == 'city1'"
        )
        client.close()
        with connect(server) as probe:
            rows = probe.query(
                "SELECT x.population FROM x IN Cities WHERE x.name == 'city1'"
            )["rows"]
            assert rows[0]["x.population"] != 0


class TestAdmissionAndShutdown:
    def test_admission_rejection_is_typed(self):
        db = Database.sample(scale=SCALE)
        srv = DatabaseServer(db, port=0, max_concurrent=1, max_wait_ms=0.0)
        host, port = srv.start()
        try:
            with ServerClient(host, port) as a:
                a.hello()
                # Hold the only slot by keeping a statement in flight:
                # admission wraps each request, so saturate via a session
                # whose request sleeps in the governor. Simplest reliable
                # probe: acquire the gate directly, then issue a request.
                entered = srv.admission.admit()
                entered.__enter__()
                try:
                    with pytest.raises(AdmissionRejected):
                        a.query("SELECT x.name FROM x IN Cities")
                finally:
                    entered.__exit__(None, None, None)
                assert a.query("SELECT x.name FROM x IN Cities")["row_count"]
        finally:
            srv.stop(drain=False)

    def test_stop_then_start_again(self):
        db = Database.sample(scale=SCALE)
        srv = DatabaseServer(db, port=0)
        srv.start()
        srv.stop()
        assert not srv.running
        host, port = srv.start()
        try:
            with ServerClient(host, port) as client:
                assert client.hello()["protocol"] == 1
        finally:
            srv.stop(drain=False)

    def test_stop_disconnects_clients(self, server):
        srv, host, port = server
        client = ServerClient(host, port)
        client.hello()
        srv.stop()
        with pytest.raises((ConnectionError, OSError)):
            client.query("SELECT x.name FROM x IN Cities")
            client.query("SELECT x.name FROM x IN Cities")


class TestReviewRegressions:
    """Pins for bugs found in review of the serving-tier PR."""

    def test_oversized_line_is_cut_off_not_buffered(self, server):
        """A newline-less byte stream must be bounded by MAX_LINE_BYTES,
        not accumulated until the client deigns to send a newline."""
        from repro.server.protocol import MAX_LINE_BYTES

        with connect(server) as client:
            client._sock.sendall(b"x" * (MAX_LINE_BYTES + 1))
            raw = client._reader.readline()
            assert b"ProtocolError" in raw
            assert client._reader.readline() == b""  # server hung up

    def test_write_conflict_drops_remote_transaction(self, server):
        """An eager conflict dooms the session's transaction; the session
        must drop the dead handle so the next statement runs clean."""
        with connect(server) as winner, connect(server) as loser:
            loser.begin()
            # Pin the loser's snapshot before the winner commits.
            loser.query("SELECT x.name FROM x IN Cities WHERE x.name == 'x'")
            winner.query(
                "UPDATE x IN Cities SET x.population = 1 "
                "WHERE x.name == 'city0'"
            )
            with pytest.raises(WriteConflict):
                loser.query(
                    "UPDATE x IN Cities SET x.population = 2 "
                    "WHERE x.name == 'city0'"
                )
            # Auto-committed (transaction dropped) and reading the
            # winner's committed value — not the discarded write, not a
            # TransactionError on a dead handle.
            rows = loser.query(
                "SELECT x.population FROM x IN Cities "
                "WHERE x.name == 'city0'"
            )["rows"]
            assert rows == [{"x.population": 1}]
