"""Regression tests for DML statement atomicity in explicit transactions.

The bug: a mid-statement failure — row 3 of a 5-row UPDATE, say — left
the rows already visited buffered in the enclosing transaction, so a
later ``commit()`` published a torn statement.  The fix snapshots the
transaction's buffered-write state before each DML statement and
restores it on failure: the *statement* is all-or-nothing while the
*transaction* (and its earlier statements) survives.  A transaction
doomed by an eager write-write conflict stays doomed — the restore must
never resurrect it.
"""

import pytest

from repro.api import Database
from repro.errors import TransactionError, WriteConflict

SCALE = 0.02

# No sample employee earns 0, so it works as a tamper sentinel.
UPDATE_ALL = "UPDATE e IN Employees SET e.salary = 0"
COUNT_SENTINEL = "SELECT e.name FROM e IN Employees WHERE e.salary == 0"


@pytest.fixture()
def db() -> Database:
    """Private mutable database (DML tests must never share state)."""
    return Database.sample(scale=SCALE)


def fail_on_nth_call(txn, method_name: str, n: int) -> dict:
    """Wrap a buffered-write method to raise on its ``n``-th invocation.

    Simulates a failure in the middle of applying one statement's rows
    (the engine calls ``txn.update``/``txn.delete`` once per target row).
    """
    real = getattr(txn, method_name)
    calls = {"count": 0}

    def wrapper(*args, **kwargs):
        calls["count"] += 1
        if calls["count"] == n:
            raise RuntimeError("synthetic mid-statement failure")
        return real(*args, **kwargs)

    setattr(txn, method_name, wrapper)
    return calls


class TestStatementAtomicity:
    def test_failed_update_buffers_nothing(self, db):
        txn = db.begin()
        calls = fail_on_nth_call(txn, "update", 3)
        with pytest.raises(RuntimeError, match="mid-statement"):
            db.query(UPDATE_ALL, transaction=txn)
        assert calls["count"] == 3  # rows 1 and 2 were buffered, then row 3 failed
        # The two already-buffered rows must have been rolled back: the
        # statement is all-or-nothing even inside an explicit txn.
        assert db.query(COUNT_SENTINEL, transaction=txn).rows == []
        txn.commit()
        assert db.query(COUNT_SENTINEL).rows == []

    def test_failed_delete_buffers_nothing(self, db):
        before = len(db.query("SELECT x.name FROM x IN Cities").rows)
        assert before >= 5
        txn = db.begin()
        fail_on_nth_call(txn, "delete", 3)
        with pytest.raises(RuntimeError, match="mid-statement"):
            db.query("DELETE x IN Cities", transaction=txn)
        inside = len(
            db.query("SELECT x.name FROM x IN Cities", transaction=txn).rows
        )
        assert inside == before
        txn.commit()
        assert len(db.query("SELECT x.name FROM x IN Cities").rows) == before

    def test_earlier_statements_survive_a_failed_one(self, db):
        txn = db.begin()
        db.query(
            "INSERT INTO Cities (name, population) VALUES ('keepme', 11)",
            transaction=txn,
        )
        fail_on_nth_call(txn, "update", 3)
        with pytest.raises(RuntimeError, match="mid-statement"):
            db.query(UPDATE_ALL, transaction=txn)
        # Statement 1's insert is intact; statement 2 vanished entirely.
        inside = db.query(
            "SELECT x.population FROM x IN Cities WHERE x.name == 'keepme'",
            transaction=txn,
        ).rows
        assert inside == [{"x.population": 11}]
        assert db.query(COUNT_SENTINEL, transaction=txn).rows == []
        txn.commit()
        after = db.query(
            "SELECT x.population FROM x IN Cities WHERE x.name == 'keepme'"
        ).rows
        assert after == [{"x.population": 11}]
        assert db.query(COUNT_SENTINEL).rows == []

    def test_transaction_usable_after_failed_statement(self, db):
        txn = db.begin()
        fail_on_nth_call(txn, "update", 3)
        with pytest.raises(RuntimeError, match="mid-statement"):
            db.query(UPDATE_ALL, transaction=txn)
        result = db.query(
            "UPDATE x IN Cities SET x.population = 777 "
            "WHERE x.name == 'city0'",
            transaction=txn,
        )
        assert result.affected == 1
        txn.commit()
        rows = db.query(
            "SELECT x.population FROM x IN Cities WHERE x.name == 'city0'"
        ).rows
        assert rows == [{"x.population": 777}]

    def test_doomed_transaction_stays_doomed(self, db):
        txn = db.begin()
        # A commit after txn's snapshot makes txn's write to the same
        # object an eager write-write conflict, dooming the whole txn.
        db.query(
            "UPDATE x IN Cities SET x.population = 9 WHERE x.name == 'city0'"
        )
        with pytest.raises(WriteConflict):
            db.query(
                "UPDATE x IN Cities SET x.population = 1 "
                "WHERE x.name == 'city0'",
                transaction=txn,
            )
        # The statement-atomicity restore must not resurrect the txn.
        assert txn.status != "active"
        with pytest.raises(TransactionError):
            db.query(
                "INSERT INTO Cities (name, population) VALUES ('ghost', 1)",
                transaction=txn,
            )
        assert db.query(
            "SELECT x.population FROM x IN Cities WHERE x.name == 'city0'"
        ).rows == [{"x.population": 9}]
