"""DISTINCT + ORDER BY on an explicit hand-built store: exact rows.

The simplifier folds both clauses into one Project operator
(``distinct=True`` plus an ``order_by``); the optimizer then has to keep
the demanded order *through* deduplication.  A five-row store with known
duplicates and a null pins the exact output — values deduplicated, order
obeyed, nulls last in both directions.
"""

import pytest

from repro.api import Database
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema, TypeDef, scalar
from repro.catalog.statistics import AttributeStats, CollectionStats
from repro.errors import SimplificationError
from repro.storage.store import ObjectStore

PEOPLE = [
    ("joe", 3),
    ("ann", 1),
    ("bob", 3),
    ("eve", 2),
    ("sam", 1),
    ("nil", None),
]


@pytest.fixture()
def db() -> Database:
    schema = Schema()
    schema.add_type(
        TypeDef("Person", 120, (scalar("name", "str"), scalar("age"))),
        with_extent=True,
    )
    catalog = Catalog(schema)
    catalog.set_stats(
        "extent(Person)",
        CollectionStats(
            len(PEOPLE),
            attributes={
                "name": AttributeStats(distinct_values=6),
                "age": AttributeStats(distinct_values=4),
            },
        ),
    )
    store = ObjectStore(catalog)
    for name, age in PEOPLE:
        store.insert("Person", {"name": name, "age": age})
    store.seal()
    return Database(catalog, store)


class TestDistinctOrderBy:
    def test_descending_exact_rows(self, db):
        result = db.query(
            "SELECT DISTINCT p.age FROM p IN extent(Person) "
            "ORDER BY p.age DESC"
        )
        assert result.rows == [
            {"p.age": 3},
            {"p.age": 2},
            {"p.age": 1},
            {"p.age": None},
        ]

    def test_ascending_exact_rows(self, db):
        result = db.query(
            "SELECT DISTINCT p.age FROM p IN extent(Person) "
            "ORDER BY p.age ASC"
        )
        assert result.rows == [
            {"p.age": 1},
            {"p.age": 2},
            {"p.age": 3},
            {"p.age": None},
        ]

    def test_order_by_other_column_keeps_first_duplicate(self, db):
        # Dedup on name is a no-op (all distinct); the order column has
        # duplicates, so DISTINCT must not collapse equal sort keys.
        result = db.query(
            "SELECT DISTINCT p.name, p.age FROM p IN extent(Person) "
            "ORDER BY p.age ASC"
        )
        assert [row["p.age"] for row in result.rows] == [1, 1, 2, 3, 3, None]
        assert {row["p.name"] for row in result.rows} == {
            name for name, _ in PEOPLE
        }

    def test_distinct_drops_real_duplicates_before_ordering(self, db):
        result = db.query(
            "SELECT DISTINCT p.age FROM p IN extent(Person) WHERE p.age >= 1 "
            "ORDER BY p.age DESC"
        )
        assert result.rows == [{"p.age": 3}, {"p.age": 2}, {"p.age": 1}]

    def test_distinct_requires_a_select_list(self, db):
        with pytest.raises(SimplificationError):
            db.query("SELECT DISTINCT * FROM p IN extent(Person)")
