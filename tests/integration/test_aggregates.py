"""Integration tests for GROUP BY / aggregates (extension).

The paper's simplification covers "arbitrary conjunctive Boolean
expressions ... but no aggregates"; this extension adds them through the
framework's normal seams (one operator, one implementation rule, one cost
formula, one iterator) — results verified against hand-rolled navigation.
"""

from collections import defaultdict

import pytest

from repro.errors import QuerySyntaxError, QueryTypeError
from repro.optimizer.plans import HashGroupByNode


class TestParsing:
    def test_aggregate_items(self, indexed_db):
        query = indexed_db.parse(
            "SELECT d.floor, COUNT(*) AS n, SUM(e.salary) FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d GROUP BY d.floor"
        )
        from repro.lang.ast import AggregateAst

        aggs = [i for i in query.select_items if isinstance(i, AggregateAst)]
        assert [a.func for a in aggs] == ["count", "sum"]
        assert query.group_by and str(query.group_by[0]) == "d.floor"

    def test_star_only_for_count(self, indexed_db):
        with pytest.raises(QuerySyntaxError):
            indexed_db.parse("SELECT SUM(*) FROM e IN Employees")

    def test_case_insensitive_functions(self, indexed_db):
        query = indexed_db.parse("SELECT Count(*), aVg(e.age) FROM e IN Employees")
        from repro.lang.ast import AggregateAst

        assert all(isinstance(i, AggregateAst) for i in query.select_items)


class TestSemantics:
    def test_group_by_matches_navigation(self, indexed_db):
        result = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n, AVG(e.salary) AS avg_sal, "
            "MIN(e.age) AS min_age, MAX(e.age) AS max_age "
            "FROM Employee e IN Employees, Department d IN extent(Department) "
            "WHERE e.department == d GROUP BY d.floor"
        )
        store = indexed_db.store
        expected: dict[int, list] = defaultdict(lambda: [0, 0, None, None])
        for oid in store.collection_oids("Employees"):
            emp = store.peek(oid)
            floor = store.peek(emp["department"])["floor"]
            acc = expected[floor]
            acc[0] += 1
            acc[1] += emp["salary"]
            acc[2] = emp["age"] if acc[2] is None else min(acc[2], emp["age"])
            acc[3] = emp["age"] if acc[3] is None else max(acc[3], emp["age"])
        got = {
            row["d.floor"]: (
                row["n"],
                row["avg_sal"],
                row["min_age"],
                row["max_age"],
            )
            for row in result.rows
        }
        assert got == {
            floor: (c, s / c, lo, hi)
            for floor, (c, s, lo, hi) in expected.items()
        }

    def test_global_count(self, indexed_db):
        store = indexed_db.store
        result = indexed_db.query(
            "SELECT COUNT(*) AS total FROM e IN Employees WHERE e.age >= 40"
        )
        actual = sum(
            1
            for oid in store.collection_oids("Employees")
            if store.peek(oid)["age"] >= 40
        )
        assert result.rows == [{"total": actual}]

    def test_group_by_without_aggregates_is_distinct_keys(self, indexed_db):
        result = indexed_db.query(
            "SELECT c.country.name FROM City c IN Cities GROUP BY c.country.name"
        )
        values = [row["c.country.name"] for row in result.rows]
        assert len(values) == len(set(values))
        store = indexed_db.store
        expected = {
            store.peek(store.peek(oid)["country"])["name"]
            for oid in store.collection_oids("Cities")
        }
        assert set(values) == expected

    def test_group_by_object_identity(self, indexed_db):
        result = indexed_db.query(
            "SELECT d, COUNT(*) AS n FROM Employee e IN Employees, "
            "Department d IN extent(Department) WHERE e.department == d "
            "GROUP BY d"
        )
        total = sum(row["n"] for row in result.rows)
        assert total == indexed_db.store.collection_cardinality("Employees")

    def test_order_by_aggregate_alias(self, indexed_db):
        result = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            "GROUP BY d.floor ORDER BY n DESC"
        )
        counts = [row["n"] for row in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_order_by_group_key(self, indexed_db):
        result = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            "GROUP BY d.floor ORDER BY d.floor"
        )
        floors = [row["d.floor"] for row in result.rows]
        assert floors == sorted(floors)

    def test_where_filters_before_grouping(self, indexed_db):
        all_groups = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d GROUP BY d.floor"
        )
        filtered = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d AND e.age >= 40 "
            "GROUP BY d.floor"
        )
        total_all = sum(r["n"] for r in all_groups.rows)
        total_filtered = sum(r["n"] for r in filtered.rows)
        assert total_filtered < total_all

    def test_count_path_skips_missing(self, indexed_db):
        """COUNT(path) counts non-null values; every employee has a salary
        so it equals COUNT(*)."""
        result = indexed_db.query(
            "SELECT COUNT(e.salary) AS with_salary, COUNT(*) AS all_rows "
            "FROM e IN Employees"
        )
        row = result.rows[0]
        assert row["with_salary"] == row["all_rows"]


class TestValidation:
    def test_plain_item_must_be_grouped(self, indexed_db):
        with pytest.raises(QueryTypeError):
            indexed_db.query(
                "SELECT e.name, COUNT(*) FROM e IN Employees GROUP BY e.age"
            )

    def test_sum_of_reference_rejected(self, indexed_db):
        with pytest.raises(QueryTypeError):
            indexed_db.query(
                "SELECT SUM(e.department) FROM e IN Employees"
            )

    def test_order_by_unknown_column_rejected(self, indexed_db):
        with pytest.raises(QueryTypeError):
            indexed_db.query(
                "SELECT d.floor, COUNT(*) FROM e IN Employees, "
                "d IN extent(Department) WHERE e.department == d "
                "GROUP BY d.floor ORDER BY e.name"
            )


class TestPlans:
    def test_hash_group_by_node(self, indexed_db):
        result = indexed_db.optimize(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d GROUP BY d.floor"
        )
        assert isinstance(result.plan, HashGroupByNode)
        assert result.plan.rows <= 20  # ~distinct floors estimate

    def test_group_cardinality_uses_stats(self, paper_catalog):
        """d.floor has 10 distinct values in the catalog stats."""
        from repro.lang.parser import parse_query
        from repro.optimizer import Optimizer
        from repro.simplify.simplifier import simplify_full

        sq = simplify_full(
            parse_query(
                "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
                "d IN extent(Department) WHERE e.department == d "
                "GROUP BY d.floor"
            ),
            paper_catalog,
        )
        result = Optimizer(paper_catalog).optimize(sq.tree)
        assert result.plan.rows == pytest.approx(10.0)

    def test_results_config_independent(self, indexed_db):
        from repro.optimizer import OptimizerConfig
        from repro.optimizer import config as C

        sql = (
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d GROUP BY d.floor"
        )
        reference = {
            (r["d.floor"], r["n"]) for r in indexed_db.query(sql).rows
        }
        for config in (
            OptimizerConfig().without(C.JOIN_TO_MAT),
            OptimizerConfig().without(C.HYBRID_HASH_JOIN),
            OptimizerConfig().without(C.POINTER_JOIN, C.ASSEMBLY),
        ):
            rows = indexed_db.query(sql, config=config).rows
            assert {(r["d.floor"], r["n"]) for r in rows} == reference


class TestHaving:
    def test_having_filters_groups(self, indexed_db):
        from collections import Counter

        store = indexed_db.store
        counts = Counter()
        for oid in store.collection_oids("Employees"):
            floor = store.peek(store.peek(oid)["department"])["floor"]
            counts[floor] += 1
        threshold = sorted(counts.values())[len(counts) // 2]
        result = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            f"GROUP BY d.floor HAVING n >= {threshold}"
        )
        expected = {(f, c) for f, c in counts.items() if c >= threshold}
        assert {(r["d.floor"], r["n"]) for r in result.rows} == expected

    def test_having_on_group_key(self, indexed_db):
        result = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            "GROUP BY d.floor HAVING d.floor <= 3"
        )
        assert result.rows
        assert all(row["d.floor"] <= 3 for row in result.rows)

    def test_having_with_constant_on_left(self, indexed_db):
        a = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            "GROUP BY d.floor HAVING 3 >= d.floor"
        )
        b = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            "GROUP BY d.floor HAVING d.floor <= 3"
        )
        key = lambda rows: sorted((r["d.floor"], r["n"]) for r in rows)
        assert key(a.rows) == key(b.rows)

    def test_having_and_order_compose(self, indexed_db):
        result = indexed_db.query(
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d "
            "GROUP BY d.floor HAVING n >= 1 ORDER BY n DESC"
        )
        counts = [row["n"] for row in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_having_unknown_column_rejected(self, indexed_db):
        from repro.errors import QueryTypeError

        with pytest.raises(QueryTypeError):
            indexed_db.query(
                "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
                "d IN extent(Department) WHERE e.department == d "
                "GROUP BY d.floor HAVING zzz > 1"
            )

    def test_having_without_group_by_rejected(self, indexed_db):
        from repro.errors import QueryTypeError

        with pytest.raises(QueryTypeError):
            indexed_db.query(
                "SELECT c.name FROM c IN Cities HAVING c.name == 'x'"
            )

    def test_having_reduces_cardinality_estimate(self, paper_catalog):
        base = (
            "SELECT d.floor, COUNT(*) AS n FROM e IN Employees, "
            "d IN extent(Department) WHERE e.department == d GROUP BY d.floor"
        )
        from repro.lang.parser import parse_query
        from repro.optimizer import Optimizer
        from repro.simplify.simplifier import simplify_full

        plain = Optimizer(paper_catalog).optimize(
            simplify_full(parse_query(base), paper_catalog).tree
        )
        filtered = Optimizer(paper_catalog).optimize(
            simplify_full(
                parse_query(base + " HAVING n >= 100"), paper_catalog
            ).tree
        )
        assert filtered.plan.rows < plain.plan.rows
