"""Integration tests for the greedy and naive baseline optimizers."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.plans import (
    AssemblyNode,
    FileScanNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
)
from repro.baselines.greedy import GreedyOptimizer
from repro.baselines.naive import NaiveOptimizer
from repro.lang.parser import parse_query
from repro.simplify.simplifier import simplify_full

from tests.conftest import QUERY_1, QUERY_2, QUERY_4


def _greedy(catalog, sql):
    sq = simplify_full(parse_query(sql), catalog)
    return GreedyOptimizer(catalog).optimize(sq.tree, result_vars=sq.result_vars)


def _naive(catalog, sql):
    tree = simplify_full(parse_query(sql), catalog).tree
    return NaiveOptimizer(catalog).optimize(tree)


def _cost_based(catalog, sql):
    sq = simplify_full(parse_query(sql), catalog)
    return Optimizer(catalog, OptimizerConfig()).optimize(
        sq.tree, result_vars=sq.result_vars
    )


class TestGreedy:
    def test_uses_both_indexes_on_query4(self, paper_catalog):
        """Figure 13: greedy exploits the time AND the name index."""
        plan = _greedy(paper_catalog, QUERY_4)
        index_scans = [n for n in plan.walk() if isinstance(n, IndexScanNode)]
        assert {s.index.name for s in index_scans} == {
            "ix_tasks_time",
            "ix_employees_name",
        }
        assert any(isinstance(n, HashJoinNode) for n in plan.walk())

    def test_greedy_slower_than_cost_based_with_both_indexes(
        self, paper_catalog
    ):
        """Table 3's 'Both' column: the paper reports 10.1 s vs 1.73 s —
        greedy loses by >4x."""
        greedy_cost = _greedy(paper_catalog, QUERY_4).total_cost.total
        optimal_cost = _cost_based(paper_catalog, QUERY_4).cost.total
        assert greedy_cost > 4 * optimal_cost

    def test_agrees_with_cost_based_on_single_index(self):
        """Table 3's single-index columns: both optimizers use the one
        index and land on comparable costs."""
        from repro.catalog.sample_db import build_catalog, index_tasks_time

        catalog = build_catalog()
        catalog.add_index(index_tasks_time())
        greedy_cost = _greedy(catalog, QUERY_4).total_cost.total
        optimal_cost = _cost_based(catalog, QUERY_4).cost.total
        # Greedy uses the same index; its only handicap left is window-1
        # navigation, a small constant factor (the paper's Table 3 shows
        # identical numbers because its optimal plan navigated too).
        assert greedy_cost <= 4 * optimal_cost

    def test_path_index_used_for_query2(self, paper_catalog):
        plan = _greedy(paper_catalog, QUERY_2)
        assert isinstance(plan, IndexScanNode)
        assert plan.index.name == "ix_cities_mayor_name"

    def test_falls_back_to_scan_without_index(self, paper_catalog_plain):
        plan = _greedy(paper_catalog_plain, QUERY_2)
        scans = [n for n in plan.walk() if isinstance(n, FileScanNode)]
        assert scans

    def test_naive_assembly_for_unindexed_mats(self, paper_catalog):
        """Query 1 has no applicable index: greedy pointer-chases with
        window 1."""
        plan = _greedy(paper_catalog, QUERY_1)
        assemblies = [n for n in plan.walk() if isinstance(n, AssemblyNode)]
        assert assemblies
        assert all(a.window == 1 for a in assemblies)

    def test_rejects_multi_collection_queries(self, paper_catalog):
        sql = (
            "SELECT e.name FROM e IN Employees, d IN extent(Department) "
            "WHERE e.department == d"
        )
        tree = simplify_full(parse_query(sql), paper_catalog).tree
        with pytest.raises(OptimizerError):
            GreedyOptimizer(paper_catalog).optimize(tree)


class TestNaive:
    def test_always_scans_and_chases(self, paper_catalog):
        plan = _naive(paper_catalog, QUERY_2)
        assert isinstance(plan, FilterNode)
        algos = [type(n).__name__ for n in plan.walk()]
        assert "IndexScanNode" not in algos
        assert "HashJoinNode" not in algos
        assemblies = [n for n in plan.walk() if isinstance(n, AssemblyNode)]
        assert all(a.window == 1 for a in assemblies)

    def test_never_uses_indexes(self, paper_catalog):
        plan = _naive(paper_catalog, QUERY_4)
        assert not [n for n in plan.walk() if isinstance(n, IndexScanNode)]

    def test_cost_dominates_optimal(self, paper_catalog):
        for sql in (QUERY_1, QUERY_2, QUERY_4):
            naive_cost = _naive(paper_catalog, sql).total_cost.total
            optimal_cost = _cost_based(paper_catalog, sql).cost.total
            assert naive_cost > optimal_cost

    def test_filter_sits_on_top(self, paper_catalog):
        plan = _naive(paper_catalog, QUERY_4)
        assert isinstance(plan, FilterNode)
        assert len(plan.predicate.comparisons) == 2
