"""Plan cache vs. DML: rebinding below the drift threshold, invalidation above.

Committed DML bumps per-collection data versions in the catalog
(``note_data_changed``).  Below ``DATA_DRIFT_THRESHOLD`` the cached plan
is *safely rebound* — served again but executed against the live
membership, so new rows appear in cached-plan results.  Past the
threshold the catalog refreshes the collection's cardinality and bumps
the stats version, which invalidates version-keyed cache entries the
same way ``analyze`` does.  UPDATE/DELETE target selection flows through
the same cache, so repeated DML statements reuse plans without ever
writing against a stale membership.
"""

import pytest

from repro.api import Database
from repro.catalog.catalog import DATA_DRIFT_THRESHOLD

SCALE = 0.02
QUERY = "SELECT x.name FROM x IN Cities WHERE x.population > 100"


@pytest.fixture()
def db() -> Database:
    """Private mutable database with plan caching on (the default)."""
    database = Database.sample(scale=SCALE)
    assert database.cache_plans
    return database


def cities(db) -> int:
    """Live city count via an uncached scan."""
    return len(db.query("SELECT x.name FROM x IN Cities", use_cache=False).rows)


def test_small_drift_rebinds_cached_plan_to_live_data(db):
    db.query(QUERY)
    assert db.query(QUERY).cache.outcome == "hit"
    db.query("INSERT INTO Cities (name, population) VALUES ('fresh', 500)")
    result = db.query(QUERY)
    # Still served from cache (one insert is ~0.5% drift) ...
    assert result.cache.outcome == "hit"
    # ... yet the plan executed against the post-commit membership.
    assert any(row["x.name"] == "fresh" for row in result.rows)


def test_drift_past_threshold_invalidates_cached_plan(db):
    db.query(QUERY)
    assert db.query(QUERY).cache.outcome == "hit"
    baseline = db.catalog.stats("Cities").cardinality
    inserts = int(baseline * DATA_DRIFT_THRESHOLD) + 2
    for i in range(inserts):
        db.query(
            f"INSERT INTO Cities (name, population) VALUES ('bulk{i}', 500)"
        )
    invalidations = db.plan_cache.stats.invalidations
    result = db.query(QUERY)
    assert result.cache.outcome == "miss"
    assert db.plan_cache.stats.invalidations == invalidations + 1
    # The refresh pulled costed cardinality back within the drift bound
    # of the live count (it snaps exact at the crossing commit, then
    # drifts again below threshold for any inserts after it).
    live = cities(db)
    assert abs(db.catalog.stats("Cities").cardinality - live) <= (
        DATA_DRIFT_THRESHOLD * live
    )
    assert sum(1 for r in result.rows if r["x.name"].startswith("bulk")) == inserts


def test_deletes_drift_the_stats_down(db):
    db.query(QUERY)
    baseline = db.catalog.stats("Cities").cardinality
    db.query("DELETE x IN Cities WHERE x.population > 0")
    assert db.catalog.stats("Cities").cardinality < baseline
    assert db.query(QUERY).cache.outcome == "miss"


def test_repeated_update_reuses_target_plan_on_live_rows(db):
    """DML target selection is cached and never writes stale memberships."""
    update = "UPDATE x IN Cities SET x.population = 1 WHERE x.population > 0"
    first = db.query(update)
    hits = db.plan_cache.stats.hits
    db.query("INSERT INTO Cities (name, population) VALUES ('late', 77)")
    second = db.query(
        "UPDATE x IN Cities SET x.population = 2 WHERE x.population > 0"
    )
    # Same target shape (auto-parameterized constants) → cache hit ...
    assert db.plan_cache.stats.hits > hits
    # ... that still sees the row inserted between the two statements.
    assert second.affected == first.affected + 1
    rows = db.query(
        "SELECT x.population FROM x IN Cities WHERE x.name == 'late'"
    ).rows
    assert rows == [{"x.population": 2}]


def test_data_version_tracks_commits_not_statements(db):
    v0 = db.catalog.data_version("Cities")
    txn = db.begin()
    db.query(
        "INSERT INTO Cities (name, population) VALUES ('t1', 1)",
        transaction=txn,
    )
    db.query(
        "INSERT INTO Cities (name, population) VALUES ('t2', 2)",
        transaction=txn,
    )
    assert db.catalog.data_version("Cities") == v0  # nothing committed yet
    txn.commit()
    assert db.catalog.data_version("Cities") > v0
