"""Integration tests for the execution-backend interface.

Contract: a backend changes *how* a plan runs, never what it returns —
``interpreted``, ``vectorized``, and ``compiled`` produce byte-identical
rows on the paper's queries (serial and under ``parallelism>1``), the
governor's timeout/cancel polls fire mid-batch and mid-fused-pipeline,
and fault injection unwinds cleanly on every backend.
"""

import pytest

from repro.api import Database
from repro.engine.backends import AUTO_MIN_ROWS, select_backend
from repro.errors import (
    ExecutionError,
    GovernorError,
    ParameterBindingError,
    QueryCancelled,
)
from repro.governor.context import QueryContext
from repro.governor.faults import FaultPlan
from repro.obs.tracer import Tracer
from tests.conftest import SCALE

QUERY_1 = (
    "SELECT Newobject(e.name(), e.department().name(), e.job().name()) "
    "FROM Employee e IN Employees "
    'WHERE e.department().plant().location() == "Dallas"'
)
QUERY_2 = 'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"'
QUERY_3 = (
    "SELECT c.mayor.age, c.name FROM City c IN Cities "
    'WHERE c.mayor.name == "Joe"'
)
QUERY_4 = (
    "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
    'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
)
PAPER_QUERIES = [QUERY_1, QUERY_2, QUERY_3, QUERY_4]

Q_CHAIN = "SELECT e.name FROM Employee e IN Employees WHERE e.salary > 10000"
Q_REJECT_ALL = "SELECT * FROM Employee e IN Employees WHERE e.salary < 0"
Q_ORDERED = (
    "SELECT e.name, e.salary FROM Employee e IN Employees "
    "WHERE e.salary > 10000 ORDER BY e.salary"
)


@pytest.fixture(scope="module")
def db() -> Database:
    return Database.sample(scale=SCALE)


class TestByteIdentical:
    @pytest.mark.parametrize("query", PAPER_QUERIES)
    @pytest.mark.parametrize("backend", ["vectorized", "compiled", "auto"])
    def test_paper_queries(self, db, query, backend):
        reference = db.query(query, use_cache=False).rows
        got = db.query(query, use_cache=False, backend=backend).rows
        assert got == reference

    @pytest.mark.parametrize("backend", ["vectorized", "compiled"])
    @pytest.mark.parametrize("degree", [2, 3])
    def test_parallel_ordered(self, db, backend, degree):
        reference = db.query(Q_ORDERED, use_cache=False).rows
        got = db.query(
            Q_ORDERED, use_cache=False, backend=backend, parallelism=degree
        ).rows
        assert got == reference

    def test_distinct_order_desc(self, db):
        text = "SELECT DISTINCT c.name FROM c IN Cities ORDER BY c.name DESC"
        reference = db.query(text, use_cache=False).rows
        for backend in ("vectorized", "compiled"):
            assert db.query(text, use_cache=False, backend=backend).rows == reference


class TestSelection:
    def test_unknown_backend_rejected_at_api(self, db):
        with pytest.raises(ParameterBindingError, match="unknown execution backend"):
            db.query(Q_CHAIN, backend="jit")

    def test_unknown_backend_rejected_at_executor(self, db):
        plan = db.optimize(Q_CHAIN).plan
        with pytest.raises(ExecutionError, match="unknown execution backend"):
            db.executor.execute(plan, backend="jit")

    def test_auto_picks_compiled_for_large_fused_chain(self, db):
        plan = db.optimize(Q_CHAIN).plan
        assert select_backend(plan) == "compiled"

    def test_auto_keeps_tiny_inputs_interpreted(self, db):
        plan = db.optimize("SELECT * FROM Capital c IN Capitals").plan
        scans = [n.rows for n in plan.walk() if not n.children]
        if all(rows < AUTO_MIN_ROWS for rows in scans):
            assert select_backend(plan) == "interpreted"

    def test_selection_traced(self, db):
        tracer = Tracer()
        plan = db.optimize(Q_CHAIN).plan
        db.executor.execute(plan, tracer=tracer, backend="auto")
        events = [e for e in tracer.events if e.category == "backend"]
        assert any(
            e.name == "select"
            and e.get("requested") == "auto"
            and e.get("chosen") == "compiled"
            for e in events
        )

    def test_cli_backend_command(self, db):
        import io

        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(db, out=out)
        shell.dispatch(".backend")
        shell.dispatch(".backend vectorized")
        shell.dispatch(".backend bogus")
        text = out.getvalue()
        assert "backend: interpreted" in text
        assert "backend set to vectorized" in text
        assert "unknown backend 'bogus'" in text
        assert shell._config().backend == "vectorized"


class TestExplainAnalyze:
    @pytest.mark.parametrize("backend", ["vectorized", "compiled"])
    def test_operator_stats_populated(self, db, backend):
        config = db.config.with_backend(backend)
        report = db.explain_analyze(Q_CHAIN, config=config)
        rendered = report.render()
        assert "File Scan" in rendered or "FileScan" in rendered
        # The scan's actual row count must be attributed even when the
        # operator ran inside a chunk pipeline / fused loop.  The name
        # filter is selective, so scan input far exceeds result rows.
        selective = 'SELECT e.name FROM Employee e IN Employees WHERE e.name == "Fred"'
        plan = db.optimize(selective).plan
        result = db.executor.execute(plan, collect_stats=True, backend=backend)
        stats = result.operator_stats
        rows_by_node = [
            stats.get(node).rows_out
            for node in plan.walk()
            if stats.get(node) is not None
        ]
        assert sum(rows_by_node) > len(result.rows)  # inner nodes counted
        scan = next(node for node in plan.walk() if not node.children)
        assert stats.get(scan) is not None
        assert stats.get(scan).rows_out > len(result.rows)  # full scan input

    def test_fused_pipeline_span_traced(self, db):
        tracer = Tracer()
        plan = db.optimize(Q_CHAIN).plan
        db.executor.execute(plan, tracer=tracer, backend="compiled")
        fused = [
            e
            for e in tracer.events
            if e.category == "backend" and e.name == "fused-pipeline"
        ]
        assert fused and fused[0].get("chain") == "FileScan→filter→project"


class _TrippingContext(QueryContext):
    """A context whose poll trips after a fixed number of checks."""

    def __init__(self, fail_after: int) -> None:
        super().__init__()
        self.calls = 0
        self.fail_after = fail_after

    def check(self) -> None:  # noqa: D102 - overrides QueryContext.check
        self.calls += 1
        if self.calls > self.fail_after:
            raise QueryCancelled("tripped mid-batch")


class TestGovernorCoverage:
    """Cancellation fires *inside* batch loops, not just at row handoff.

    The query rejects every row, so a backend that only polled around
    emitted rows would run to completion; the poll must happen per
    scanned chunk (vectorized) / per scanned row countdown (compiled).
    """

    @pytest.mark.parametrize("backend", ["vectorized", "compiled"])
    def test_cancel_mid_batch_with_no_output_rows(self, backend):
        db = Database.sample(scale=0.1)
        plan = db.optimize(Q_REJECT_ALL).plan
        ctx = _TrippingContext(fail_after=3)
        with pytest.raises(QueryCancelled):
            db.executor.execute(plan, ctx=ctx, backend=backend)
        assert ctx.calls > 3  # the poll really fired inside the loop

    @pytest.mark.parametrize("backend", ["vectorized", "compiled"])
    def test_timeout_option_fires(self, db, backend):
        with pytest.raises(GovernorError):
            db.query(
                Q_CHAIN,
                use_cache=False,
                backend=backend,
                options={"$timeout": 0.0001},
            )

    @pytest.mark.parametrize("backend", ["vectorized", "compiled"])
    def test_fault_injection_unwinds_cleanly(self, backend):
        db = Database.sample(scale=SCALE)
        reference = db.query(Q_CHAIN, use_cache=False).rows
        for seed in range(5):
            ctx = QueryContext(fault_plan=FaultPlan.chaos(seed, 0.05))
            try:
                got = db.query(
                    Q_CHAIN, use_cache=False, governor=ctx, backend=backend
                ).rows
            except GovernorError:
                pass  # typed failure is within the governor contract
            else:
                assert got == reference
            # Injector teardown and I/O-scope unwind happened either way.
            assert db.store.buffer.faults is None
            assert db.store.buffer.clear_io_scopes() == 0
