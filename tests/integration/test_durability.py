"""Durability subsystem: WAL framing, checkpoints, recovery, crash points.

The contract under test: a commit that was acknowledged (or whose log
record was fully fsynced) survives ``Database.open`` byte-for-byte; a
torn record vanishes as if never attempted; recovery is idempotent; and
a crash at any point of the checkpoint protocol leaves the previous
checkpoint plus the full log authoritative.
"""

import os
import shutil
import warnings

import pytest

from repro.api import Database
from repro.durability.checkpoint import (
    checkpoint_path,
    load_newest_checkpoint,
    write_checkpoint,
)
from repro.durability.manager import _encode_mvcc
from repro.durability.wal import LOG_NAME, LogRecord, frame, scan_log
from repro.errors import SessionExpired, StorageError
from repro.governor.faults import CrashPlan, SimulatedCrash

SCALE = 0.02


def durable(tmp_path, **kwargs) -> tuple[Database, str]:
    directory = str(tmp_path / "db")
    db = Database.sample(scale=SCALE)
    db.enable_durability(directory, **kwargs)
    return db, directory


def scan_text(db: Database, collection: str = "Cities") -> list[str]:
    """A totally-ordered, oid-inclusive rendering of one collection."""
    result = db.query(
        f"SELECT * FROM c IN {collection} ORDER BY c.name ASC"
    )
    lines = []
    for row in result.rows:
        handle = row["c"]
        lines.append(f"{handle.oid}:{handle.data!r}")
    return lines


class TestRoundTrip:
    def test_reopen_replays_committed_dml(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Zzz', 7)")
        db.query("UPDATE c IN Cities SET c.population = 123 "
                 "WHERE c.name == 'Zzz'")
        db.query("DELETE c IN Cities WHERE c.population > 9000000")
        want = scan_text(db)
        want_csn = db.store.mvcc.current_csn

        recovered = Database.open(directory)
        assert recovered.store.mvcc.current_csn == want_csn
        assert scan_text(recovered) == want
        assert recovered.durability.last_recovery["replayed"] == 3

    def test_recovered_engine_mints_identical_oids(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Aaa', 1)")
        recovered = Database.open(directory)
        # The same follow-up INSERT must mint the same OID on both
        # engines: the log's minted field replays the allocator exactly.
        stmt = "INSERT INTO Cities (name, population) VALUES ('Bbb', 2)"
        db.query(stmt)
        recovered.query(stmt)
        assert scan_text(db) == scan_text(recovered)

    def test_checkpoint_truncates_log(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Ccc', 3)")
        assert os.path.getsize(os.path.join(directory, LOG_NAME)) > 0
        csn = db.checkpoint()
        assert csn == db.store.mvcc.current_csn
        assert os.path.getsize(os.path.join(directory, LOG_NAME)) == 0

        recovered = Database.open(directory)
        assert recovered.durability.last_recovery == {
            "checkpoint_csn": csn,
            "replayed": 0,
        }
        assert scan_text(recovered) == scan_text(db)

    def test_close_checkpoints_on_the_way_out(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Ddd', 4)")
        want = scan_text(db)
        db.close()
        assert db.durability is None
        assert os.path.getsize(os.path.join(directory, LOG_NAME)) == 0
        recovered = Database.open(directory)
        assert scan_text(recovered) == want

    def test_indexes_are_rebuilt_from_manifest(self, tmp_path):
        db, directory = durable(tmp_path)
        db.create_index("city_pop", "Cities", ("population",))
        db.query("INSERT INTO Cities (name, population) VALUES ('Eee', 5)")
        recovered = Database.open(directory)
        assert "city_pop" in [ix.name for ix in recovered.catalog.indexes()]
        recovered.drop_index("city_pop")
        reopened = Database.open(directory)
        assert "city_pop" not in [
            ix.name for ix in reopened.catalog.indexes()
        ]


class TestApiGuards:
    def test_enable_twice_refuses(self, tmp_path):
        db, directory = durable(tmp_path)
        other = Database.sample(scale=SCALE)
        with pytest.raises(StorageError, match="Database.open"):
            other.enable_durability(directory)

    def test_open_non_durable_directory_refuses(self, tmp_path):
        with pytest.raises(StorageError, match="manifest"):
            Database.open(str(tmp_path / "nope"))

    def test_checkpoint_without_durability_refuses(self):
        db = Database.sample(scale=SCALE)
        with pytest.raises(StorageError):
            db.checkpoint()

    def test_durability_needs_reproducible_bootstrap(self, tmp_path):
        db = Database.sample(scale=SCALE)
        db.bootstrap = None
        with pytest.raises(StorageError, match="bootstrap"):
            db.enable_durability(str(tmp_path / "db"))


class TestRecoveryEdgeCases:
    def test_empty_log_recovers_to_base(self, tmp_path):
        db, directory = durable(tmp_path)
        base = scan_text(db)
        recovered = Database.open(directory)
        assert recovered.store.mvcc.current_csn == 0
        assert scan_text(recovered) == base

    def test_torn_tail_truncated_at_every_byte_offset(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Fff', 6)")
        want = scan_text(db)
        db.query("UPDATE c IN Cities SET c.population = 99 "
                 "WHERE c.name == 'Fff'")
        log_path = os.path.join(directory, LOG_NAME)
        blob = open(log_path, "rb").read()
        records, valid = scan_log(log_path)
        assert len(records) == 2 and valid == len(blob)
        boundary = len(frame(records[0].to_payload()))

        for cut in range(boundary, len(blob)):
            trial = str(tmp_path / f"cut-{cut}")
            shutil.copytree(directory, trial)
            with open(os.path.join(trial, LOG_NAME), "r+b") as fh:
                fh.truncate(cut)
            recovered = Database.open(trial)
            # Only the first commit survives, at every truncation point
            # inside the second record — torn header, torn payload, all.
            assert recovered.store.mvcc.current_csn == 1, cut
            assert scan_text(recovered) == want, cut
            # The torn tail was cut off the file itself, so new appends
            # land after valid records, not after garbage.
            size = os.path.getsize(os.path.join(trial, LOG_NAME))
            assert size == boundary, cut
            recovered.close()
            shutil.rmtree(trial)

    def test_garbage_tail_is_ignored_and_removed(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Ggg', 7)")
        want = scan_text(db)
        log_path = os.path.join(directory, LOG_NAME)
        good = os.path.getsize(log_path)
        with open(log_path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef" * 8)
        recovered = Database.open(directory)
        assert scan_text(recovered) == want
        assert os.path.getsize(log_path) == good

    def test_recovery_is_idempotent_across_reopens(self, tmp_path):
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Hhh', 8)")
        first = Database.open(directory)
        want = scan_text(first)
        csn = first.store.mvcc.current_csn
        second = Database.open(directory)
        assert second.store.mvcc.current_csn == csn
        assert scan_text(second) == want

    def test_crash_after_rename_before_truncate_skips_replay(self, tmp_path):
        """The checkpoint covers the log's records; replay must skip them.

        Simulates a crash in the window after the checkpoint's atomic
        rename but before the log truncate: the directory holds both a
        checkpoint at CSN n and log records up to n.  Replaying those
        records on top of the restored checkpoint would double-apply.
        """
        db, directory = durable(tmp_path)
        db.query("INSERT INTO Cities (name, population) VALUES ('Iii', 9)")
        want = scan_text(db)
        mvcc = db.store.mvcc
        with mvcc.commit_lock:
            raw = mvcc.state_snapshot()
            state = {
                "schema": 1,
                "csn": raw["csn"],
                "mvcc": _encode_mvcc(raw),
                "catalog": db.catalog.durable_state(),
            }
        write_checkpoint(directory, state)  # deliberately no truncate
        assert os.path.getsize(os.path.join(directory, LOG_NAME)) > 0
        recovered = Database.open(directory)
        assert recovered.durability.last_recovery == {
            "checkpoint_csn": 1,
            "replayed": 0,
        }
        assert scan_text(recovered) == want

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        directory = str(tmp_path / "ckpts")
        os.makedirs(directory)
        write_checkpoint(directory, {"csn": 3, "tag": "old"})
        # write_checkpoint deletes older files on success, so craft the
        # corrupt newer one by hand.
        with open(checkpoint_path(directory, 9), "wb") as fh:
            fh.write(b"\x00\x00\x00\x00 not json at all")
        state = load_newest_checkpoint(directory)
        assert state == {"csn": 3, "tag": "old"}

    def test_tmp_checkpoint_leftovers_are_ignored(self, tmp_path):
        directory = str(tmp_path / "ckpts")
        os.makedirs(directory)
        write_checkpoint(directory, {"csn": 2, "tag": "real"})
        with open(checkpoint_path(directory, 8) + ".tmp", "wb") as fh:
            fh.write(b"half-written")
        assert load_newest_checkpoint(directory) == {
            "csn": 2,
            "tag": "real",
        }


class TestCrashPoints:
    def test_mid_record_commit_does_not_survive(self, tmp_path):
        plan = CrashPlan(crash_at_commit=2, crash_point="mid-record")
        db, directory = durable(tmp_path, crash_plan=plan)
        db.query("INSERT INTO Cities (name, population) VALUES ('Jjj', 1)")
        want = scan_text(db)
        with pytest.raises(SimulatedCrash):
            db.query("UPDATE c IN Cities SET c.population = 2 "
                     "WHERE c.name == 'Jjj'")
        recovered = Database.open(directory)
        assert recovered.store.mvcc.current_csn == 1
        assert scan_text(recovered) == want

    def test_post_record_pre_ack_commit_survives(self, tmp_path):
        plan = CrashPlan(
            crash_at_commit=1, crash_point="post-record-pre-ack"
        )
        db, directory = durable(tmp_path, crash_plan=plan)
        with pytest.raises(SimulatedCrash):
            db.query(
                "INSERT INTO Cities (name, population) VALUES ('Kkk', 1)"
            )
        # The crashed engine never applied it in memory...
        assert db.store.mvcc.current_csn == 0
        # ...but the record was fsynced, so recovery replays it.
        recovered = Database.open(directory)
        assert recovered.store.mvcc.current_csn == 1
        assert any("Kkk" in line for line in scan_text(recovered))

    def test_mid_checkpoint_rename_keeps_old_checkpoint(self, tmp_path):
        db, directory = durable(tmp_path, checkpoint_every=1)
        plan = CrashPlan(
            crash_at_commit=1, crash_point="mid-checkpoint-rename"
        )
        db.durability.crash_plan = plan
        db.durability.wal.crash_plan = plan
        with pytest.raises(SimulatedCrash):
            db.query(
                "INSERT INTO Cities (name, population) VALUES ('Lll', 1)"
            )
        # The commit's log record is durable; the checkpoint died at its
        # tmp file, leaving the initial checkpoint + log authoritative.
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers
        recovered = Database.open(directory)
        assert recovered.store.mvcc.current_csn == 1
        assert any("Lll" in line for line in scan_text(recovered))


class TestCommitOrderingRegression:
    def test_listener_exception_does_not_unwind_a_published_commit(self):
        """A raising commit listener must not make the commit look failed.

        Regression: listeners run after the CSN publish (and, when
        durable, after the log fsync); before the fix an exception there
        travelled back through ``Transaction.commit`` and the DML path
        "rolled back" a transaction that had already committed.
        """
        db = Database.sample(scale=SCALE)

        def bad_listener(record):
            raise ValueError("observer bug")

        db.store.add_commit_listener(bad_listener)
        with pytest.warns(RuntimeWarning, match="commit listener"):
            result = db.query(
                "INSERT INTO Cities (name, population) VALUES ('Mmm', 1)"
            )
        assert result.affected == 1
        assert result.csn == 1
        rows = db.query(
            "SELECT * FROM c IN Cities WHERE c.name == 'Mmm'"
        ).rows
        assert len(rows) == 1

    def test_plan_cache_and_data_versions_see_post_fsync_state(
        self, tmp_path
    ):
        """A crashed (never-applied) commit must leave no side effects.

        The commit hook raises *before* the in-memory apply, so the data
        version, the plan cache's validity, and the visible rows must
        all still describe the pre-crash state.
        """
        plan = CrashPlan(crash_at_commit=1, crash_point="mid-record")
        db, _ = durable(tmp_path, crash_plan=plan)
        version_before = db.catalog.data_version("Cities")
        count_before = len(db.query("SELECT * FROM c IN Cities").rows)
        with pytest.raises(SimulatedCrash):
            db.query(
                "INSERT INTO Cities (name, population) VALUES ('Nnn', 1)"
            )
        assert db.catalog.data_version("Cities") == version_before
        assert (
            len(db.query("SELECT * FROM c IN Cities").rows) == count_before
        )


class TestWalFraming:
    def test_log_record_round_trips_types_and_key_order(self):
        from repro.storage.objects import Oid

        oid = Oid("City", 41)
        record = LogRecord(
            csn=5,
            updates={oid: {"b": 2, "a": (1, "x"), "n": None}},
            deletes=[Oid("City", 7)],
            inserts=[("Cities", Oid("City", 42), {"z": 1, "a": 2})],
            minted=[Oid("City", 42), Oid("City", 43)],
        )
        back = LogRecord.from_payload(record.to_payload())
        assert back.csn == 5
        assert back.updates == record.updates
        assert list(back.updates[oid]) == ["b", "a", "n"]  # order kept
        assert isinstance(back.updates[oid]["a"], tuple)
        assert back.deletes == record.deletes
        assert back.inserts == record.inserts
        assert back.minted == record.minted

    def test_scan_stops_at_crc_mismatch(self, tmp_path):
        path = str(tmp_path / "wal.log")
        good = frame(LogRecord(csn=1).to_payload())
        bad = bytearray(frame(LogRecord(csn=2).to_payload()))
        bad[-1] ^= 0xFF  # flip one payload byte: CRC fails
        with open(path, "wb") as fh:
            fh.write(good + bytes(bad))
        records, valid = scan_log(path)
        assert [r.csn for r in records] == [1]
        assert valid == len(good)


class TestCrashOracleSmoke:
    def test_seeded_cases_have_no_divergences(self):
        from repro.fuzz.crash import crash_fuzz

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            stats = crash_fuzz(seed=11, iterations=6, shrink=False)
        assert stats.ok
        assert stats.iterations == 6


class TestServerIdleReaper:
    def test_expired_session_raises_typed_error(self):
        from repro.server import DatabaseServer, ServerClient

        db = Database.sample(scale=SCALE)
        server = DatabaseServer(db, port=0, idle_timeout_seconds=0.15)
        host, port = server.start()
        try:
            client = ServerClient(host, port)
            client.begin()
            client.query(
                "UPDATE c IN Cities SET c.population = 1 "
                "WHERE c.name == 'city0'"
            )
            import time as _time

            deadline = _time.monotonic() + 5.0
            expired = None
            while _time.monotonic() < deadline:
                _time.sleep(0.1)
                try:
                    client.query("SELECT c.name FROM c IN Cities")
                except SessionExpired as exc:
                    expired = exc
                    break
                # Each successful request resets the idle clock, so
                # stop issuing them and just wait the timeout out.
                _time.sleep(0.3)
            assert isinstance(expired, SessionExpired)
            # The reaper rolled the transaction back: a fresh session
            # can write the same rows without a conflict.
            with ServerClient(host, port) as fresh:
                payload = fresh.query(
                    "UPDATE c IN Cities SET c.population = 2 "
                    "WHERE c.name == 'city0'"
                )
                assert payload["ok"]
        finally:
            server.stop(drain=False)

    def test_busy_session_is_not_reaped(self):
        from repro.server.session import Session

        db = Database.sample(scale=SCALE)
        session = Session(1, db)
        with session.lock:  # simulate an in-flight request
            assert session.maybe_expire(now=10**9, timeout=0.001) is False
        assert not session.expired


class TestClientConnectRetry:
    def test_no_retries_by_default(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        from repro.server import ServerClient

        with pytest.raises(ConnectionRefusedError):
            ServerClient("127.0.0.1", port)

    def test_connect_retries_until_server_is_up(self):
        import threading

        from repro.server import DatabaseServer, ServerClient

        db = Database.sample(scale=SCALE)
        server = DatabaseServer(db, port=0)
        started: list[tuple[str, int]] = []

        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server.port = port

        def delayed_start():
            import time as _time

            _time.sleep(0.15)
            started.append(server.start())

        thread = threading.Thread(target=delayed_start)
        thread.start()
        try:
            client = ServerClient(
                "127.0.0.1", port, connect_retries=40,
                backoff_base_ms=10.0, backoff_cap_ms=50.0,
            )
            assert client.hello()["ok"]
            client.close()
        finally:
            thread.join()
            server.stop(drain=False)


class TestServerDrainCheckpoints:
    def test_graceful_stop_checkpoints_durable_db(self, tmp_path):
        from repro.server import DatabaseServer, ServerClient

        db, directory = durable(tmp_path)
        server = DatabaseServer(db, port=0)
        host, port = server.start()
        try:
            with ServerClient(host, port) as client:
                client.query(
                    "INSERT INTO Cities (name, population) "
                    "VALUES ('Ooo', 1)"
                )
        finally:
            server.stop(drain=True)
        assert os.path.getsize(os.path.join(directory, LOG_NAME)) == 0
        recovered = Database.open(directory)
        assert recovered.durability.last_recovery["replayed"] == 0
        assert any("Ooo" in line for line in scan_text(recovered))
