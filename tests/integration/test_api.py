"""Integration tests for the public `Database` facade."""

import pytest

from repro.api import Database
from repro.engine.tuples import Obj
from repro.errors import CatalogError, QuerySyntaxError, QueryTypeError
from repro.optimizer import OptimizerConfig

from tests.conftest import QUERY_2, SCALE


class TestQueryPipeline:
    def test_query_returns_rows_plan_and_accounting(self, indexed_db):
        result = indexed_db.query(QUERY_2)
        assert result.plan is not None
        assert result.optimization.cost.total > 0
        assert result.execution is not None
        assert len(result) == len(result.rows)
        for row in result.rows:
            assert isinstance(row["c"], Obj)
            assert row["c"].resident

    def test_select_star_rows_only_carry_range_vars(self, indexed_db):
        result = indexed_db.query(
            QUERY_2, config=OptimizerConfig().without("collapse-to-index-scan")
        )
        for row in result.rows:
            assert set(row.keys()) == {"c"}

    def test_projection_rows_are_value_dicts(self, indexed_db):
        result = indexed_db.query(
            "SELECT c.name AS n, c.population FROM c IN Cities "
            "WHERE c.population >= 0"
        )
        row = result.rows[0]
        assert set(row.keys()) == {"n", "c.population"}
        assert isinstance(row["n"], str)

    def test_execute_false_skips_execution(self, indexed_db):
        result = indexed_db.query(QUERY_2, execute=False)
        assert result.execution is None
        assert result.rows == []

    def test_explain_renders_plan(self, indexed_db):
        text = indexed_db.explain(QUERY_2)
        assert "Index Scan" in text
        assert "optimized in" in text

    def test_syntax_error_propagates(self, indexed_db):
        with pytest.raises(QuerySyntaxError):
            indexed_db.query("SELEC * FROM c IN Cities")

    def test_type_error_propagates(self, indexed_db):
        with pytest.raises(QueryTypeError):
            indexed_db.query("SELECT * FROM c IN Nowhere")


class TestDdl:
    def test_create_index_measures_distinct_keys(self, fresh_db):
        ix = fresh_db.create_index("ix_age", "Cities", ("mayor", "age"))
        assert ix.distinct_keys > 1

    def test_created_index_changes_plans(self, fresh_db):
        before = fresh_db.optimize(QUERY_2).plan
        fresh_db.create_index("ix_q2", "Cities", ("mayor", "name"))
        after = fresh_db.optimize(QUERY_2).plan
        assert before.algorithm != "IndexScan"
        assert after.algorithm == "IndexScan"

    def test_drop_index_reverts_plan(self, fresh_db):
        fresh_db.create_index("ix_q2", "Cities", ("mayor", "name"))
        fresh_db.drop_index("ix_q2")
        plan = fresh_db.optimize(QUERY_2).plan
        assert plan.algorithm != "IndexScan"

    def test_unpopulated_database_requires_distinct_keys(self):
        db = Database.sample(scale=SCALE, populate=False)
        with pytest.raises(CatalogError):
            db.create_index("ix", "Cities", ("mayor", "name"))
        db.create_index("ix", "Cities", ("mayor", "name"), distinct_keys=100)
        assert db.catalog.find_index("Cities", ("mayor", "name")) is not None


class TestUnpopulated:
    def test_optimize_without_store(self):
        db = Database.sample(scale=SCALE, populate=False)
        result = db.optimize(QUERY_2)
        assert result.plan is not None

    def test_query_without_store_cannot_execute(self):
        db = Database.sample(scale=SCALE, populate=False)
        result = db.query(QUERY_2)
        assert result.execution is None

    def test_execute_plan_without_store_raises(self):
        db = Database.sample(scale=SCALE, populate=False)
        plan = db.optimize(QUERY_2).plan
        with pytest.raises(CatalogError):
            db.execute_plan(plan)


class TestDefaultConfig:
    def test_database_level_config_applies(self):
        db = Database.sample(
            scale=SCALE,
            config=OptimizerConfig().without("collapse-to-index-scan"),
        )
        db.create_index("ix_q2", "Cities", ("mayor", "name"))
        plan = db.optimize(QUERY_2).plan
        assert plan.algorithm != "IndexScan"

    def test_per_query_config_overrides(self, indexed_db):
        default = indexed_db.optimize(QUERY_2).plan
        overridden = indexed_db.optimize(
            QUERY_2, config=OptimizerConfig().without("collapse-to-index-scan")
        ).plan
        assert default.algorithm == "IndexScan"
        assert overridden.algorithm != "IndexScan"
