"""Executor validation: simulated I/O behaviour matches the cost model's
structural claims (estimates and simulations agree in *shape*)."""

from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C

from tests.conftest import QUERY_2, QUERY_3


class TestSimulatedIo:
    def test_index_plan_reads_far_fewer_pages(self, indexed_db):
        """The Figure 8 vs Figure 9 gap is visible in simulated page reads,
        not just in estimates."""
        fast = indexed_db.query(QUERY_2)
        slow = indexed_db.query(
            QUERY_2,
            config=OptimizerConfig().without(
                C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN, C.MAT_TO_JOIN
            ),
        )
        assert fast.execution.page_reads * 5 < slow.execution.page_reads
        assert (
            fast.execution.simulated_io_seconds * 5
            < slow.execution.simulated_io_seconds
        )

    def test_enforcer_assembles_only_qualifying_mayors(self, indexed_db):
        """Query 3's plan must fetch barely more than Query 2's."""
        q2 = indexed_db.query(QUERY_2)
        q3 = indexed_db.query(QUERY_3)
        extra = q3.execution.page_reads - q2.execution.page_reads
        assert 0 <= extra <= len(q3.rows) + 2

    def test_windowed_assembly_beats_window_one_in_simulation(self, indexed_db):
        """The elevator effect is physical: same plan shape, window 8 vs 1,
        measured on the disk simulator."""
        cfg = OptimizerConfig().without(
            C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN, C.MAT_TO_JOIN
        )
        windowed = indexed_db.query(QUERY_2, config=cfg)
        naive = indexed_db.query(QUERY_2, config=cfg.with_window(1))
        assert (
            windowed.execution.simulated_io_seconds
            <= naive.execution.simulated_io_seconds
        )

    def test_estimate_and_simulation_same_order_of_magnitude(self, indexed_db):
        """At test scale estimates won't match absolutely (cardinalities
        differ), but plans the optimizer calls vastly cheaper must also
        *simulate* vastly cheaper."""
        fast = indexed_db.query(QUERY_2)
        slow = indexed_db.query(
            QUERY_2,
            config=OptimizerConfig().without(
                C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN, C.MAT_TO_JOIN
            ),
        )
        est_ratio = (
            slow.optimization.cost.total / max(1e-9, fast.optimization.cost.total)
        )
        sim_ratio = slow.execution.simulated_io_seconds / max(
            1e-9, fast.execution.simulated_io_seconds
        )
        assert est_ratio > 5
        assert sim_ratio > 5

    def test_warm_cache_cheaper_than_cold(self, indexed_db):
        plan = indexed_db.optimize(QUERY_2).plan
        cold = indexed_db.execute_plan(plan, cold=True)
        warm = indexed_db.execute_plan(plan, cold=False)
        assert warm.simulated_io_seconds <= cold.simulated_io_seconds

    def test_buffer_hit_rate_reported(self, indexed_db):
        result = indexed_db.query(QUERY_3)
        assert 0.0 <= result.execution.buffer_hit_rate <= 1.0


class TestExecutionAccounting:
    def test_accounting_isolated_between_runs(self, indexed_db):
        first = indexed_db.query(QUERY_2)
        second = indexed_db.query(QUERY_2)
        assert second.execution.page_reads == first.execution.page_reads

    def test_index_build_not_charged(self, indexed_db):
        """Index construction happens before the query's I/O clock starts."""
        result = indexed_db.query(QUERY_2)
        # A handful of index + object pages, nowhere near a Cities scan.
        assert result.execution.page_reads < 50
