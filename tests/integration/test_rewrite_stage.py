"""Integration tests for the pre-memo rewrite stage.

The stage's contract on the paper's queries: rewrites may reshape the
logical tree the memo sees, but Queries 1-4 must choose exactly the
same physical plan at exactly the same estimated cost as the unrewritten
search — the rewrites only remove redundant search work there, never
plans.  On wide join chains the stage must actually shrink the memo,
which is the whole point.
"""

import pytest

from repro.lang.parser import parse_query
from repro.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.plans import plan_signature
from repro.simplify.simplifier import simplify_full

from tests.conftest import QUERY_1, QUERY_2, QUERY_3, QUERY_4

PAPER_QUERIES = {
    "Q1": QUERY_1,
    "Q2": QUERY_2,
    "Q3": QUERY_3,
    "Q4": QUERY_4,
}

# Five-collection slice of the scalability bench's join chain: two
# fusable collection joins plus a cartesian input and a filter.
CHAIN_QUERY = (
    "SELECT e.name FROM Employee e IN Employees, "
    "Department d IN extent(Department), Job j IN extent(Job), "
    "Task t IN Tasks, Country n IN extent(Country) "
    "WHERE e.department == d AND e.job == j AND t.time == 100 "
    "AND n.name != 'x'"
)


def _optimize(catalog, sql, config=None):
    sq = simplify_full(parse_query(sql), catalog)
    optimizer = Optimizer(catalog, config or OptimizerConfig())
    return optimizer.optimize(sq.tree, result_vars=sq.result_vars)


class TestPaperQueriesUnchanged:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_same_plan_and_cost_as_unrewritten_search(
        self, paper_catalog, name
    ):
        sql = PAPER_QUERIES[name]
        rewritten = _optimize(paper_catalog, sql)
        unrewritten = _optimize(
            paper_catalog, sql, OptimizerConfig().with_rewrites(False)
        )
        assert plan_signature(rewritten.plan) == plan_signature(
            unrewritten.plan
        ), f"{name}: rewrite stage changed the chosen plan"
        assert rewritten.cost.total == pytest.approx(
            unrewritten.cost.total
        ), f"{name}: rewrite stage changed the plan cost"


class TestSearchSpaceShrinks:
    def test_chain_memo_is_smaller_with_rewrites(self, paper_catalog):
        rewritten = _optimize(paper_catalog, CHAIN_QUERY)
        unrewritten = _optimize(
            paper_catalog, CHAIN_QUERY, OptimizerConfig().with_rewrites(False)
        )
        assert rewritten.groups < unrewritten.groups / 3
        assert (
            rewritten.stats.mexprs_generated
            < unrewritten.stats.mexprs_generated / 3
        )

    def test_chain_rewrites_are_traced(self, paper_catalog):
        result = _optimize(paper_catalog, CHAIN_QUERY)
        rules = {event.rule for event in result.rewrites}
        assert "rewrite-collection-join" in rules
        assert "rewrite-mat-chain" in rules
        # EXPLAIN surfaces each firing.
        explain = result.explain()
        assert "-- rewrite: rewrite-mat-chain" in explain

    def test_ablated_stage_restores_full_search(self, paper_catalog):
        ablated = _optimize(
            paper_catalog, CHAIN_QUERY, OptimizerConfig().with_rewrites(False)
        )
        assert ablated.rewrites == ()
