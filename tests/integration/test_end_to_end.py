"""End-to-end semantic tests: query results verified against hand-rolled
navigation over the raw store (ground truth independent of the whole
optimizer/engine stack)."""

from repro.storage.datagen import DALLAS, FRED, JOE, QUERY4_TIME

from tests.conftest import QUERY_1, QUERY_2, QUERY_3, QUERY_4


def _ground_truth_q2(db):
    store = db.store
    return {
        oid
        for oid in store.collection_oids("Cities")
        if store.peek(store.peek(oid)["mayor"])["name"] == JOE
    }


class TestQuery2Semantics:
    def test_rows_match_navigation(self, indexed_db):
        expected = _ground_truth_q2(indexed_db)
        got = {row["c"].oid for row in indexed_db.query(QUERY_2).rows}
        assert got == expected


class TestQuery3Semantics:
    def test_projected_ages_match(self, indexed_db):
        store = indexed_db.store
        expected = sorted(
            (
                store.peek(store.peek(oid)["mayor"])["age"],
                store.peek(oid)["name"],
            )
            for oid in _ground_truth_q2(indexed_db)
        )
        rows = indexed_db.query(QUERY_3).rows
        got = sorted((row["c.mayor.age"], row["c.name"]) for row in rows)
        assert got == expected


class TestQuery1Semantics:
    def test_rows_match_navigation(self, indexed_db):
        store = indexed_db.store
        expected = []
        for oid in store.collection_oids("Employees"):
            emp = store.peek(oid)
            dept = store.peek(emp["department"])
            plant = store.peek(dept["plant"])
            if plant["location"] == DALLAS:
                job = store.peek(emp["job"])
                expected.append((emp["name"], dept["name"], job["name"]))
        rows = indexed_db.query(QUERY_1).rows
        got = [
            (r["e.name"], r["e.department.name"], r["e.job.name"]) for r in rows
        ]
        assert sorted(got) == sorted(expected)
        assert expected  # generator plants Dallas employees


class TestQuery4Semantics:
    def test_rows_match_navigation_with_multiplicity(self, indexed_db):
        """The EXISTS variable is an inner range: results are tasks only,
        with the paper's unnesting multiplicity — a task appears once per
        matching team member."""
        store = indexed_db.store
        expected = []
        for oid in store.collection_oids("Tasks"):
            task = store.peek(oid)
            if task["time"] != QUERY4_TIME:
                continue
            for member in task["team_members"]:
                if store.peek(member)["name"] == FRED:
                    expected.append(oid)
        rows = indexed_db.query(QUERY_4).rows
        assert all(set(r.keys()) == {"t"} for r in rows)
        got = [r["t"].oid for r in rows]
        assert sorted(got) == sorted(expected)


class TestSetQuerySemantics:
    def test_union_matches_navigation(self, indexed_db):
        store = indexed_db.store
        sql = (
            "SELECT c.name AS n FROM c IN Cities WHERE c.population >= 500000 "
            "UNION SELECT k.name AS n FROM k IN Capitals"
        )
        expected = {
            store.peek(o)["name"]
            for o in store.collection_oids("Cities")
            if store.peek(o)["population"] >= 500000
        } | {store.peek(o)["name"] for o in store.collection_oids("Capitals")}
        got = {row["n"] for row in indexed_db.query(sql).rows}
        assert got == expected

    def test_intersect_and_except(self, indexed_db):
        big = (
            "SELECT c.name AS n FROM c IN Cities WHERE c.population >= 500000"
        )
        all_cities = "SELECT c.name AS n FROM c IN Cities"
        inter = indexed_db.query(f"{big} INTERSECT {all_cities}").rows
        assert {r["n"] for r in inter} == {
            r["n"] for r in indexed_db.query(big).rows
        }
        minus = indexed_db.query(f"{all_cities} EXCEPT {big}").rows
        big_names = {r["n"] for r in indexed_db.query(big).rows}
        assert all(r["n"] not in big_names for r in minus)


class TestDistinct:
    def test_distinct_dedups(self, indexed_db):
        plain = indexed_db.query("SELECT c.country.name FROM c IN Cities").rows
        distinct = indexed_db.query(
            "SELECT DISTINCT c.country.name FROM c IN Cities"
        ).rows
        assert len(distinct) < len(plain)
        values = [r["c.country.name"] for r in distinct]
        assert len(values) == len(set(values))


class TestRangeOperators:
    def test_inequalities_end_to_end(self, indexed_db):
        store = indexed_db.store
        rows = indexed_db.query(
            "SELECT * FROM c IN Cities WHERE c.population < 5000"
        ).rows
        expected = {
            o
            for o in store.collection_oids("Cities")
            if store.peek(o)["population"] < 5000
        }
        assert {r["c"].oid for r in rows} == expected

    def test_oid_join_semantics(self, indexed_db):
        store = indexed_db.store
        sql = (
            "SELECT Newobject(e.name(), d.name()) "
            "FROM Employee e IN Employees, Department d IN extent(Department) "
            "WHERE d.floor() == 3 AND e.department() == d"
        )
        rows = indexed_db.query(sql).rows
        expected = 0
        for oid in store.collection_oids("Employees"):
            emp = store.peek(oid)
            if store.peek(emp["department"])["floor"] == 3:
                expected += 1
        assert len(rows) == expected
