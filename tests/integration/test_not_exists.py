"""Integration tests for NOT EXISTS (anti-join decorrelation).

EXISTS flattens (the paper's translation); NOT EXISTS cannot — it becomes
an AntiJoin whose right input is a decorrelated rebuild of the subquery
over cloned outer ranges, matched by object identity.
"""

import pytest

from repro.algebra.operators import AntiJoin
from repro.errors import SimplificationError
from repro.optimizer import OptimizerConfig
from repro.optimizer import config as C
from repro.optimizer.plans import HashAntiJoinNode
from repro.storage.datagen import FRED, QUERY4_TIME

NOT_Q4 = (
    "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND NOT EXISTS ("
    'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
)


def _ground_truth(db):
    store = db.store
    out = set()
    for oid in store.collection_oids("Tasks"):
        task = store.peek(oid)
        if task["time"] != QUERY4_TIME:
            continue
        if not any(
            store.peek(member)["name"] == FRED
            for member in task["team_members"]
        ):
            out.add(oid)
    return out


class TestSimplification:
    def test_anti_join_operator_emitted(self, indexed_db):
        tree = indexed_db.simplify(NOT_Q4).tree
        assert isinstance(tree, AntiJoin)
        # The left input carries the outer conjunct, not the inner one.
        assert "t.time" in str(tree.left.pretty())
        assert "Fred" in tree.right.pretty()

    def test_cloned_variables_disjoint(self, indexed_db):
        from repro.algebra.scopes import derive_scope_tree

        tree = indexed_db.simplify(NOT_Q4).tree
        scope = derive_scope_tree(tree, indexed_db.catalog)
        # Output scope is the LEFT scope only: the clones do not leak.
        assert scope.names == {"t"}

    def test_uncorrelated_not_exists_rejected(self, indexed_db):
        with pytest.raises(SimplificationError):
            indexed_db.simplify(
                "SELECT * FROM t IN Tasks WHERE NOT EXISTS ("
                "SELECT c FROM c IN Cities WHERE c.population > 5)"
            )

    def test_contradictory_subquery_vacuously_true(self, indexed_db):
        """NOT EXISTS over an unsatisfiable subquery keeps every row."""
        result = indexed_db.query(
            "SELECT * FROM t IN Tasks WHERE t.time == 100 AND NOT EXISTS ("
            "SELECT m FROM Employee m IN t.team_members "
            "WHERE m.age == 1 AND m.age == 2)"
        )
        plain = indexed_db.query(
            "SELECT * FROM t IN Tasks WHERE t.time == 100"
        )
        assert {r["t"].oid for r in result.rows} == {
            r["t"].oid for r in plain.rows
        }


class TestExecution:
    def test_matches_navigation(self, indexed_db):
        result = indexed_db.query(NOT_Q4)
        assert {row["t"].oid for row in result.rows} == _ground_truth(indexed_db)
        assert all(set(row.keys()) == {"t"} for row in result.rows)

    def test_no_duplicates(self, indexed_db):
        """Anti-join emits each surviving outer tuple exactly once, even
        when the outer side was never duplicated by unnesting."""
        result = indexed_db.query(NOT_Q4)
        oids = [row["t"].oid for row in result.rows]
        assert len(oids) == len(set(oids))

    def test_exists_and_not_exists_partition(self, indexed_db):
        positive = indexed_db.query(
            "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
            'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")'
        )
        negative = indexed_db.query(NOT_Q4)
        base = indexed_db.query("SELECT * FROM Task t IN Tasks WHERE t.time == 100")
        pos = {r["t"].oid for r in positive.rows}
        neg = {r["t"].oid for r in negative.rows}
        assert pos | neg == {r["t"].oid for r in base.rows}
        assert not (pos & neg)

    def test_plan_uses_hash_anti_join(self, indexed_db):
        result = indexed_db.optimize(NOT_Q4)
        assert any(
            isinstance(n, HashAntiJoinNode) for n in result.plan.walk()
        )

    def test_results_config_independent(self, indexed_db):
        reference = {r["t"].oid for r in indexed_db.query(NOT_Q4).rows}
        for config in (
            OptimizerConfig().without(C.MAT_TO_JOIN),
            OptimizerConfig().without(C.POINTER_JOIN),
            OptimizerConfig().without(C.COLLAPSE_TO_INDEX_SCAN),
        ):
            rows = indexed_db.query(NOT_Q4, config=config).rows
            assert {r["t"].oid for r in rows} == reference

    def test_with_projection(self, indexed_db):
        result = indexed_db.query(
            "SELECT t.name FROM Task t IN Tasks WHERE t.time == 100 AND "
            'NOT EXISTS (SELECT m FROM Employee m IN t.team_members '
            'WHERE m.name == "Fred")'
        )
        store = indexed_db.store
        expected = {store.peek(oid)["name"] for oid in _ground_truth(indexed_db)}
        assert {row["t.name"] for row in result.rows} == expected

    def test_with_aggregation(self, indexed_db):
        result = indexed_db.query(
            "SELECT COUNT(*) AS n FROM Task t IN Tasks WHERE t.time == 100 "
            'AND NOT EXISTS (SELECT m FROM Employee m IN t.team_members '
            'WHERE m.name == "Fred")'
        )
        assert result.rows == [{"n": len(_ground_truth(indexed_db))}]


class TestNesting:
    def test_exists_inside_not_exists(self, indexed_db):
        """A positive EXISTS inside a NOT EXISTS flattens into the cloned
        right-hand block."""
        sql = (
            "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND NOT EXISTS ("
            "SELECT m FROM Employee m IN t.team_members WHERE "
            'm.name == "Fred" AND EXISTS ('
            "SELECT m2 FROM Employee m2 IN t.team_members WHERE m2.age < 30))"
        )
        result = indexed_db.query(sql)
        store = indexed_db.store
        expected = set()
        for oid in store.collection_oids("Tasks"):
            task = store.peek(oid)
            if task["time"] != QUERY4_TIME:
                continue
            members = task["team_members"]
            has_young = any(store.peek(m)["age"] < 30 for m in members)
            has_fred = any(store.peek(m)["name"] == FRED for m in members)
            if not (has_fred and has_young):
                expected.add(oid)
        assert {r["t"].oid for r in result.rows} == expected

    def test_not_exists_inside_not_exists_rejected(self, indexed_db):
        with pytest.raises(SimplificationError):
            indexed_db.simplify(
                "SELECT * FROM Task t IN Tasks WHERE NOT EXISTS ("
                "SELECT m FROM Employee m IN t.team_members WHERE NOT EXISTS ("
                "SELECT m2 FROM Employee m2 IN t.team_members "
                "WHERE m2.age < 30))"
            )

    def test_two_sibling_not_exists(self, indexed_db):
        sql = (
            "SELECT * FROM Task t IN Tasks WHERE t.time == 100 "
            'AND NOT EXISTS (SELECT m FROM Employee m IN t.team_members '
            'WHERE m.name == "Fred") '
            "AND NOT EXISTS (SELECT m2 FROM Employee m2 IN t.team_members "
            "WHERE m2.age < 25)"
        )
        result = indexed_db.query(sql)
        store = indexed_db.store
        expected = set()
        for oid in store.collection_oids("Tasks"):
            task = store.peek(oid)
            if task["time"] != QUERY4_TIME:
                continue
            members = task["team_members"]
            if any(store.peek(m)["name"] == FRED for m in members):
                continue
            if any(store.peek(m)["age"] < 25 for m in members):
                continue
            expected.add(oid)
        assert {r["t"].oid for r in result.rows} == expected
