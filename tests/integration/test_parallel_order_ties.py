"""Tie-heavy ORDER BY through the exchange: every degree, same sequence.

Forty objects ordered by a path into a three-object type gives ~40/3
rows per sort value — the ordered k-way merge sees nothing *but* ties.
The engine's contract (``ordering_key``: value, then binding identity,
then the plan's iteration variables) makes the order total, so the
merged sequence must be byte-identical to the serial sort at every
worker count, and the direct :class:`repro.engine.parallel.Exchange`
merge must reproduce a serial :func:`repro.engine.iterators.sort_rows`.
"""

from repro.engine import iterators as it
from repro.engine.parallel import Exchange, merge_key
from repro.engine.tuples import row_key
from repro.fuzz import AttrSpec, TypeSpec, WorldSpec, build_database

TIE_WORLD = WorldSpec(
    data_seed=11,
    types=(
        TypeSpec("T0", count=3, attrs=(AttrSpec("s0", distinct=2),)),
        TypeSpec(
            "T1",
            count=40,
            attrs=(
                AttrSpec("s0", distinct=2, null_prob=0.3),
                AttrSpec("r0", kind="ref", target="T0"),
            ),
        ),
    ),
)

ORDERED = "SELECT * FROM x IN extent(T1) ORDER BY x.r0.s0 {direction}"


class TestThroughTheOptimizer:
    def _sequences(self, direction):
        db = build_database(TIE_WORLD)
        serial = db.query(
            ORDERED.format(direction=direction), use_cache=False
        ).rows
        assert len(serial) == 40
        reference = [row_key(r) for r in serial]
        for degree in (1, 2, 3, 4):
            rows = db.query(
                ORDERED.format(direction=direction),
                use_cache=False,
                parallelism=degree,
            ).rows
            yield degree, reference, [row_key(r) for r in rows]

    def test_desc_ties_stable_across_worker_counts(self):
        for degree, reference, candidate in self._sequences("DESC"):
            assert candidate == reference, f"parallelism={degree} diverged"

    def test_asc_ties_stable_across_worker_counts(self):
        for degree, reference, candidate in self._sequences("ASC"):
            assert candidate == reference, f"parallelism={degree} diverged"


class TestDirectExchangeMerge:
    def _rows(self):
        db = build_database(TIE_WORLD)
        return db.query("SELECT * FROM x IN extent(T1)", use_cache=False).rows

    def test_ordered_merge_equals_serial_sort(self):
        rows = self._rows()
        tie_vars = ("x",)
        serial = [
            row_key(r)
            for r in it.sort_rows(rows, "x", "s0", True, tie_vars)
        ]
        for degree in (2, 3, 4):
            partitions = [rows[i::degree] for i in range(degree)]
            sorted_parts = [
                it.sort_rows(part, "x", "s0", True, tie_vars)
                for part in partitions
            ]
            merged = Exchange(
                sorted_parts,
                ordered=True,
                key=merge_key("x", "s0", True, tie_vars),
            )
            assert [row_key(r) for r in merged] == serial, (
                f"{degree}-way merge diverged from the serial sort"
            )

    def test_merge_handles_all_null_partition(self):
        rows = self._rows()
        null_rows = [r for r in rows if r["x"].field("s0") is None]
        value_rows = [r for r in rows if r["x"].field("s0") is not None]
        assert null_rows and value_rows  # null_prob=0.3 guarantees both
        tie_vars = ("x",)
        serial = [
            row_key(r)
            for r in it.sort_rows(rows, "x", "s0", False, tie_vars)
        ]
        merged = Exchange(
            [
                it.sort_rows(null_rows, "x", "s0", False, tie_vars),
                it.sort_rows(value_rows, "x", "s0", False, tie_vars),
            ],
            ordered=True,
            key=merge_key("x", "s0", False, tie_vars),
        )
        assert [row_key(r) for r in merged] == serial
