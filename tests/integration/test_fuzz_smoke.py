"""Quick in-process differential fuzz: fixed seeds, a few dozen cases.

This is the tier-1 guard against *new* divergences between the Volcano
search, the rule-restricted variants, the naive and greedy baselines,
the parallel executor, and the plan-cache/prepared paths.  Seeds are
fixed so the run is deterministic; the nightly long-fuzz workflow covers
fresh seeds at scale.
"""

from repro.fuzz import fuzz


def test_fuzz_smoke_seed_2026():
    stats = fuzz(seed=2026, iterations=25, shrink=False)
    assert stats.iterations == 25
    assert stats.pairs_run > 150  # the oracle really exercised pairs
    assert stats.ok, "\n".join(str(m) for m in stats.mismatches)


def test_fuzz_smoke_seed_7():
    stats = fuzz(seed=7, iterations=15, shrink=False)
    assert stats.ok, "\n".join(str(m) for m in stats.mismatches)
