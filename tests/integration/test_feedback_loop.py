"""End-to-end tests of the cardinality-feedback loop.

The loop's contract, exercised through ``Database.query``: execution
feeds observed per-subplan cardinalities into ``Database.feedback``;
re-optimization prefers those observations over catalog statistics
(plans annotated "(fed)"); a blown estimate triggers one mid-query
adaptive replan; and none of it may ever change result bytes — only
plans.  Staleness: feedback-stamped plan-cache entries are invalidated
when the store learns something new, and observations are dropped once
their collections drift past the catalog's 20% threshold.
"""

import pytest

from repro.api import Database
from repro.fuzz.worldgen import (
    AttrSpec,
    IndexSpec,
    TypeSpec,
    WorldSpec,
    build_database,
)

SCALE = 0.02

PAPER_QUERIES = (
    "SELECT Newobject(e.name(), e.department().name(), e.job().name()) "
    "FROM Employee e IN Employees "
    'WHERE e.department().plant().location() == "Dallas"',
    'SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe"',
    "SELECT c.mayor.age, c.name FROM City c IN Cities "
    'WHERE c.mayor.name == "Joe"',
    "SELECT * FROM Task t IN Tasks WHERE t.time == 100 AND EXISTS ("
    'SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")',
)


def skewed_world() -> WorldSpec:
    """A world where the uniform estimate is off by ~100x.

    ``Hot.k`` pins 30% of rows to the hot value 0 while its index sees
    hundreds of distinct keys, so ``k == 0`` is estimated at ~1.4 rows
    and nested loops wins the join — until feedback reports the truth.
    """
    return WorldSpec(
        types=(
            TypeSpec(
                name="Dim",
                count=120,
                attrs=(
                    AttrSpec(
                        name="s0", kind="scalar", scalar_type="int", distinct=40
                    ),
                ),
            ),
            TypeSpec(
                name="Hot",
                count=300,
                attrs=(
                    AttrSpec(
                        name="k",
                        kind="scalar",
                        scalar_type="int",
                        distinct=100_000,
                        skew=0.3,
                    ),
                    AttrSpec(
                        name="j", kind="scalar", scalar_type="int", distinct=40
                    ),
                ),
            ),
        ),
        indexes=(IndexSpec("ix_hot_k", "extent(Hot)", ("k",)),),
        data_seed=7,
    )


SKEWED_QUERY = (
    "SELECT h.j FROM Hot h IN extent(Hot), Dim d IN extent(Dim) "
    "WHERE h.k == 0 && h.j == d.s0"
)


def rows_key(rows):
    return sorted(repr(row) for row in rows)


class TestFeedbackDisabled:
    """``with_feedback(False)`` (the default) must be a strict no-op."""

    def test_paper_queries_same_plan_and_rows_as_empty_feedback(self):
        """With nothing observed yet, feedback-on plans exactly as off."""
        db = Database.sample(scale=SCALE)
        for text in PAPER_QUERIES:
            off = db.optimize(text)
            on = db.optimize(text, config=db.config.with_feedback(True))
            assert off.plan.pretty() == on.plan.pretty(), text
            off_rows = db.query(text, use_cache=False).rows
            on_rows = db.query(
                text, config=db.config.with_feedback(True), use_cache=False
            ).rows
            assert rows_key(off_rows) == rows_key(on_rows), text

    def test_disabled_config_never_consults_or_feeds_the_store(self):
        db = Database.sample(scale=SCALE)
        db.query(PAPER_QUERIES[1], use_cache=False)
        db.query(PAPER_QUERIES[1], use_cache=False)
        assert len(db.feedback) == 0
        assert db.feedback.stats.lookups == 0

    def test_explain_has_no_fed_markers_when_disabled(self):
        db = Database.sample(scale=SCALE)
        assert "(fed)" not in db.explain(PAPER_QUERIES[1], costs=True)


class TestFeedbackLoop:
    def test_execution_populates_the_store(self):
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        db.query(SKEWED_QUERY, use_cache=False)
        assert len(db.feedback) > 0
        assert db.feedback.stats.ingested > 0

    def test_replanned_query_uses_fed_estimates(self):
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        first = db.query(SKEWED_QUERY, use_cache=False)
        explained = db.explain(SKEWED_QUERY, costs=True)
        assert "(fed)" in explained
        # The fed cardinality flips the join strategy off nested loops.
        assert "Nested Loops" not in explained
        second = db.query(SKEWED_QUERY, use_cache=False)
        assert rows_key(first.rows) == rows_key(second.rows)

    def test_adaptive_replan_triggers_once_and_preserves_rows(self):
        reference = build_database(skewed_world())
        expected = rows_key(reference.query(SKEWED_QUERY).rows)

        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        result = db.query(SKEWED_QUERY, use_cache=False)
        assert db.feedback.stats.replans == 1
        assert rows_key(result.rows) == expected
        # Later runs are planned right from the start: no more replans.
        db.query(SKEWED_QUERY, use_cache=False)
        assert db.feedback.stats.replans == 1

    def test_observations_persist_across_queries(self):
        """A different query over the same subplan reuses the feedback."""
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        db.query("SELECT h.j FROM Hot h IN extent(Hot) WHERE h.k == 0")
        hits_before = db.feedback.stats.hits
        db.optimize(SKEWED_QUERY)
        assert db.feedback.stats.hits > hits_before


class TestCacheStaleness:
    def test_feedback_version_invalidates_cached_plans(self):
        """A plan cached before execution taught the store is stale.

        Pre-fix, the cache served the original (pre-feedback) plan
        forever: the entry's catalog version still matched, so nothing
        ever invalidated it.
        """
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        db.query(SKEWED_QUERY)  # miss; executes; ingests; replans
        invalidations = db.plan_cache.stats.invalidations
        db.query(SKEWED_QUERY)  # the stamped entry is now stale
        assert db.plan_cache.stats.invalidations > invalidations
        assert "(fed)" in db.explain(SKEWED_QUERY, costs=True)

    def test_stable_workload_reaches_cache_hits(self):
        """Once observations stop moving, the cache serves hits again."""
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        db.query(SKEWED_QUERY)
        db.query(SKEWED_QUERY)
        hits = db.plan_cache.stats.hits
        db.query(SKEWED_QUERY)
        assert db.plan_cache.stats.hits > hits

    def test_feedback_configs_do_not_share_cache_slots(self):
        db = Database.sample(scale=SCALE)
        text = PAPER_QUERIES[1]
        db.query(text)
        hits = db.plan_cache.stats.hits
        db.query(text, config=db.config.with_feedback(True))
        assert db.plan_cache.stats.hits == hits  # distinct key: no false hit


class TestDriftInvalidation:
    def test_dml_drift_drops_observations(self):
        db = Database.sample(scale=SCALE)
        db.config = db.config.with_feedback(True)
        text = "SELECT x.name FROM x IN Cities WHERE x.population > 0"
        db.query(text, use_cache=False)
        assert len(db.feedback) > 0
        version = db.feedback.version
        # Shrink Cities far past the 20% drift threshold.
        survivors = len(db.query("SELECT x.name FROM x IN Cities").rows)
        db.query("DELETE x IN Cities WHERE x.population >= 0")
        remaining = len(db.query("SELECT x.name FROM x IN Cities").rows)
        assert remaining < survivors
        db.optimize(text)  # lookups drop the drifted entries on sight
        assert db.feedback.stats.stale_drops > 0
        assert db.feedback.version > version

    def test_small_dml_keeps_observations(self):
        db = Database.sample(scale=SCALE)
        db.config = db.config.with_feedback(True)
        text = "SELECT x.name FROM x IN Cities WHERE x.population > 0"
        db.query(text, use_cache=False)
        entries = len(db.feedback)
        assert entries > 0
        db.query("INSERT INTO Cities (name, population) VALUES ('one', 1)")
        db.optimize(text)  # < 20% drift: observations still served
        assert len(db.feedback) == entries
        assert db.feedback.stats.stale_drops == 0


class TestMvccIsolation:
    def test_transactional_reads_never_feed_the_store(self):
        """Uncommitted state must not leak into shared feedback."""
        db = Database.sample(scale=SCALE)
        db.config = db.config.with_feedback(True)
        txn = db.begin()
        db.query(
            "INSERT INTO Cities (name, population) VALUES ('ghost', 1)",
            transaction=txn,
        )
        db.query(
            "SELECT x.name FROM x IN Cities WHERE x.population > 0",
            transaction=txn,
            use_cache=False,
        )
        assert len(db.feedback) == 0
        txn.rollback()

    def test_snapshot_pinned_across_adaptive_replan(self):
        """The replanned execution re-reads the same MVCC snapshot."""
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        result = db.query(SKEWED_QUERY, use_cache=False)
        assert db.feedback.stats.replans == 1
        reference = build_database(skewed_world())
        assert rows_key(result.rows) == rows_key(
            reference.query(SKEWED_QUERY).rows
        )


class TestExplainProvenance:
    def test_explain_analyze_reports_fed_source(self):
        db = build_database(skewed_world())
        db.config = db.config.with_feedback(True)
        db.query(SKEWED_QUERY, use_cache=False)
        report = db.explain_analyze(SKEWED_QUERY)
        rendered = report.render()
        assert "(fed)" in rendered
        assert any(
            node.est_source == "feedback" for node in report.root.walk()
        )
