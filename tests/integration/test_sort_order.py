"""Integration tests for the sort-order physical property.

The paper names sort order "the standard example for a physical property
in relational query optimization" but omitted merge join; this suite
covers our completion of the pair: ORDER BY through the whole pipeline,
the sort enforcer, merge-join selection, and order preservation claims.
"""

import pytest

from repro.optimizer import Optimizer, OptimizerConfig
from repro.optimizer import config as C
from repro.optimizer.physical_props import PhysProps, SortKey
from repro.optimizer.plans import MergeJoinNode, SortNode


class TestOrderByEndToEnd:
    def test_projection_order_by_scalar(self, indexed_db):
        result = indexed_db.query(
            "SELECT c.name, c.population FROM c IN Cities "
            "WHERE c.population >= 500000 ORDER BY c.population DESC"
        )
        pops = [row["c.population"] for row in result.rows]
        assert pops == sorted(pops, reverse=True)
        assert len(pops) > 1

    def test_projection_order_by_path(self, indexed_db):
        result = indexed_db.query(
            "SELECT c.name, c.mayor.age FROM c IN Cities "
            "WHERE c.population < 100000 ORDER BY c.mayor.age"
        )
        ages = [row["c.mayor.age"] for row in result.rows]
        assert ages == sorted(ages)

    def test_select_star_order_by(self, indexed_db):
        result = indexed_db.query(
            "SELECT * FROM c IN Cities WHERE c.population < 100000 "
            "ORDER BY c.name"
        )
        names = [row["c"].field("name") for row in result.rows]
        assert names == sorted(names)

    def test_order_by_asc_explicit(self, indexed_db):
        asc = indexed_db.query(
            "SELECT c.name FROM c IN Cities WHERE c.population < 50000 "
            "ORDER BY c.name ASC"
        )
        default = indexed_db.query(
            "SELECT c.name FROM c IN Cities WHERE c.population < 50000 "
            "ORDER BY c.name"
        )
        assert [r["c.name"] for r in asc.rows] == [
            r["c.name"] for r in default.rows
        ]

    def test_order_requirement_appears_in_plan(self, indexed_db):
        result = indexed_db.optimize(
            "SELECT c.name FROM c IN Cities ORDER BY c.name"
        )
        assert any(isinstance(n, SortNode) for n in result.plan.walk())

    def test_oid_order_free_from_scan(self, indexed_db):
        """Ordering by the range variable itself (OID order) is what a
        file scan already delivers: no Sort node needed."""
        result = indexed_db.optimize(
            "SELECT * FROM c IN Cities WHERE c.population < 100000 ORDER BY c"
        )
        assert not any(isinstance(n, SortNode) for n in result.plan.walk())

    def test_results_identical_with_rules_disabled(self, indexed_db):
        sql = (
            "SELECT c.name, c.mayor.age FROM c IN Cities "
            "WHERE c.population < 100000 ORDER BY c.mayor.age"
        )
        reference = [
            (r["c.name"], r["c.mayor.age"])
            for r in indexed_db.query(sql).rows
        ]
        for config in (
            OptimizerConfig().without(C.MERGE_JOIN),
            OptimizerConfig().without(C.POINTER_JOIN),
            OptimizerConfig().without(C.MAT_TO_JOIN),
        ):
            rows = indexed_db.query(sql, config=config).rows
            got = [(r["c.name"], r["c.mayor.age"]) for r in rows]
            # Sort keys equal => same multiset; order within equal keys may
            # legitimately differ between plans.
            assert sorted(got) == sorted(reference)
            ages = [age for _, age in got]
            assert ages == sorted(ages)


class TestMergeJoin:
    def test_merge_join_selected_when_order_free(self, paper_catalog_plain):
        """Joining an extent on its own OID: the extent side is already
        sorted, so merge join only needs one sort — and when the output
        must ALSO be in that order, it beats hash join + sort."""
        from repro.lang.parser import parse_query
        from repro.simplify.simplifier import simplify_full

        sql = (
            "SELECT e.name, d.name FROM Employee e IN Employees, "
            "Department d IN extent(Department) WHERE e.department == d "
            "ORDER BY d"
        )
        sq = simplify_full(parse_query(sql), paper_catalog_plain)
        # Force consideration without the Mat rewriting shortcut.
        result = Optimizer(
            paper_catalog_plain,
            OptimizerConfig().without(C.JOIN_TO_MAT),
        ).optimize(sq.tree, result_vars=sq.result_vars)
        # Merge join must at least be a *valid* alternative; assert the
        # chosen plan delivers the order and executes correctly.
        assert result.plan is not None

    def test_merge_join_executes_correctly(self, indexed_db):
        """Disable hash join entirely: merge join must carry the query."""
        sql = (
            "SELECT Newobject(e.name(), d.name()) FROM Employee e IN Employees, "
            "Department d IN extent(Department) "
            "WHERE d.floor() == 3 AND e.department() == d"
        )
        reference = indexed_db.query(sql).rows
        merge_only = indexed_db.query(
            sql,
            config=OptimizerConfig().without(
                C.HYBRID_HASH_JOIN, C.NESTED_LOOPS, C.JOIN_TO_MAT
            ),
        )
        assert any(
            isinstance(n, MergeJoinNode) for n in merge_only.plan.walk()
        )
        key = lambda r: (r["e.name"], r["d.name"])
        assert sorted(map(key, merge_only.rows)) == sorted(map(key, reference))

    def test_merge_join_records_key_terms(self, indexed_db):
        sql = (
            "SELECT Newobject(e.name(), d.name()) FROM Employee e IN Employees, "
            "Department d IN extent(Department) WHERE e.department() == d"
        )
        result = indexed_db.optimize(
            sql,
            config=OptimizerConfig().without(
                C.HYBRID_HASH_JOIN, C.NESTED_LOOPS, C.JOIN_TO_MAT
            ),
        )
        node = next(
            n for n in result.plan.walk() if isinstance(n, MergeJoinNode)
        )
        assert str(node.left_key) in ("e.department", "d.self")
        assert str(node.right_key) in ("e.department", "d.self")


class TestPropsAndEnforcer:
    def test_order_satisfaction(self):
        key = SortKey("c", "name")
        assert PhysProps.of("c", order=key).satisfies(PhysProps.of(order=key))
        assert not PhysProps.of("c").satisfies(PhysProps.of(order=key))
        assert PhysProps.of("c", order=key).satisfies(PhysProps.of("c"))

    def test_restrict_drops_foreign_order(self):
        props = PhysProps.of("c", "d", order=SortKey("d", "floor"))
        restricted = props.restrict(frozenset({"c"}))
        assert restricted.order is None

    def test_sort_enforcer_disabled(self, indexed_db):
        from repro.errors import NoPlanFoundError

        with pytest.raises(NoPlanFoundError):
            indexed_db.optimize(
                "SELECT c.name FROM c IN Cities ORDER BY c.name",
                config=OptimizerConfig().without(C.SORT_ENFORCER),
            )

    def test_sort_by_attribute_requires_residency(self, indexed_db):
        """Sorting by c.mayor.age forces the mayor into memory below the
        sort — visible as assembly/pointer-join feeding the Sort node."""
        result = indexed_db.optimize(
            "SELECT c.name FROM c IN Cities WHERE c.population < 100000 "
            "ORDER BY c.mayor.age"
        )
        sort = next(n for n in result.plan.walk() if isinstance(n, SortNode))
        assert "c.mayor" in sort.children[0].delivered.in_memory
