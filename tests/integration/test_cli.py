"""Integration tests for the interactive shell (driven via a Shell object)."""

import io

import pytest

from repro.cli import Shell


@pytest.fixture()
def shell(fresh_db) -> Shell:
    return Shell(fresh_db)


def run_lines(shell: Shell, *lines: str) -> str:
    """Feed lines to the shell, capturing stdout."""
    import contextlib

    out = io.StringIO()
    stream = io.StringIO("\n".join(lines) + "\n")
    with contextlib.redirect_stdout(out):
        shell.run(stream, interactive=False)
    return out.getvalue()


class TestCommands:
    def test_catalog(self, shell):
        output = run_lines(shell, ".catalog")
        assert "Cities" in output

    def test_help(self, shell):
        assert ".analyze" in run_lines(shell, ".help")

    def test_index_lifecycle(self, shell):
        output = run_lines(
            shell,
            ".index ixm Cities mayor.name",
            ".indexes",
            ".drop ixm",
            ".indexes",
        )
        assert "created ixm" in output
        assert "Cities on mayor.name" in output
        assert "dropped ixm" in output

    def test_analyze(self, shell):
        output = run_lines(shell, ".analyze Cities")
        assert "analyzed Cities" in output

    def test_explain_does_not_execute(self, shell):
        output = run_lines(
            shell, ".explain SELECT * FROM c IN Cities WHERE c.name == 'x'"
        )
        assert "File Scan Cities" in output
        assert "simulated I/O" not in output  # no execution summary

    def test_rules_listing_and_toggle(self, shell):
        output = run_lines(
            shell, ".disable collapse-to-index-scan", ".rules"
        )
        assert "collapse-to-index-scan (disabled)" in output
        output = run_lines(shell, ".enable collapse-to-index-scan", ".rules")
        assert "collapse-to-index-scan\n" in output

    def test_disabled_rule_changes_plan(self, shell):
        run_lines(shell, ".index ixm Cities mayor.name")
        with_rule = run_lines(
            shell, ".explain SELECT * FROM c IN Cities WHERE c.mayor.name == 'Joe'"
        )
        assert "Index Scan" in with_rule
        without = run_lines(
            shell,
            ".disable collapse-to-index-scan",
            ".explain SELECT * FROM c IN Cities WHERE c.mayor.name == 'Joe'",
        )
        assert "Index Scan" not in without

    def test_unknown_command(self, shell):
        assert "unknown command" in run_lines(shell, ".bogus")

    def test_error_reported_not_raised(self, shell):
        output = run_lines(shell, "SELECT * FROM x IN Nowhere")
        assert "error:" in output

    def test_quit_stops(self, shell):
        output = run_lines(shell, ".quit", ".catalog")
        assert "Cities" not in output


class TestQueries:
    def test_query_prints_plan_rows_and_costs(self, shell):
        output = run_lines(
            shell,
            "SELECT c.name FROM c IN Cities WHERE c.population >= 900000",
        )
        assert "File Scan Cities" in output
        assert "simulated I/O" in output
        assert "c.name=" in output

    def test_row_cap(self, shell):
        output = run_lines(shell, "SELECT c.name FROM c IN Cities")
        assert "more rows" in output

    def test_object_rows_render_names(self, shell):
        output = run_lines(
            shell, "SELECT * FROM c IN Cities WHERE c.population >= 990000"
        )
        assert "c=city" in output


class TestExtendedCommands:
    def test_trace_command(self, shell):
        output = run_lines(
            shell,
            ".index ixm Cities mayor.name",
            ".trace SELECT c.mayor.age, c.name FROM c IN Cities "
            "WHERE c.mayor.name == 'Joe'",
        )
        assert "optimize(group" in output
        assert "require {c, c.mayor}" in output

    def test_trace_prints_event_summary(self, shell):
        output = run_lines(
            shell,
            ".index ixm Cities mayor.name",
            ".trace SELECT c.mayor.age, c.name FROM c IN Cities "
            "WHERE c.mayor.name == 'Joe'",
        )
        assert "events (" in output
        assert "enforcer assembly" in output

    def test_explain_analyze_command(self, shell):
        output = run_lines(
            shell,
            ".explain analyze SELECT c.name FROM c IN Cities "
            "WHERE c.population >= 900000",
        )
        assert "EXPLAIN ANALYZE" in output
        assert "est " in output
        assert "act " in output
        assert "hits" in output

    def test_validate_command(self, shell):
        output = run_lines(shell, ".validate")
        assert "sequential scan" in output
        assert "ratio" in output

    def test_dynamic_command(self, shell):
        output = run_lines(
            shell,
            ".index ixm Cities mayor.name",
            ".dynamic SELECT * FROM c IN Cities WHERE c.mayor.name == 'Joe'",
        )
        assert "scenarios" in output
        assert "(no indexes)" in output


class TestResourceLimits:
    """Satellite (c): .timeout / .memory / .chaos session limits."""

    def test_help_documents_limits(self, shell):
        output = run_lines(shell, ".help")
        assert ".timeout" in output
        assert ".memory" in output
        assert ".chaos" in output

    def test_show_set_clear_cycle(self, shell):
        output = run_lines(
            shell,
            ".timeout",
            ".timeout 5000",
            ".timeout",
            ".timeout off",
            ".timeout",
        )
        assert "timeout: off" in output
        assert "timeout set to 5000 ms" in output
        assert "timeout: 5000 ms" in output
        assert "timeout cleared" in output

    def test_rejects_non_positive_limits(self, shell):
        output = run_lines(shell, ".timeout -3", ".memory 0")
        assert "timeout must be positive" in output
        assert "memory budget must be positive" in output
        assert shell.timeout_ms is None
        assert shell.memory_bytes is None

    def test_memory_budget_spills_queries(self, shell):
        output = run_lines(
            shell,
            ".memory 512",
            "SELECT c.name, c.population FROM c IN Cities ORDER BY c.name",
        )
        assert "memory budget set to 512 bytes" in output
        assert "spilled" in output

    def test_expired_timeout_reports_typed_error(self, shell):
        output = run_lines(
            shell,
            ".timeout 0.00001",
            "SELECT c.name FROM c IN Cities ORDER BY c.name",
        )
        assert "exceeded its 1e-05 ms deadline" in output

    def test_chaos_seed_keeps_answers_right(self, shell):
        clean = run_lines(
            shell, "SELECT c.name FROM c IN Cities WHERE c.population >= 0"
        )
        chaotic = run_lines(
            shell,
            ".chaos 7",
            "SELECT c.name FROM c IN Cities WHERE c.population >= 0",
        )
        assert "chaos seed set to 7" in chaotic
        clean_rows = [l for l in clean.splitlines() if l.startswith("  ")]
        chaos_rows = [l for l in chaotic.splitlines() if l.startswith("  ")]
        assert sorted(clean_rows) == sorted(chaos_rows)


class TestTransactionsAndServer:
    """Serving-tier dot-commands: .begin/.commit/.rollback/.server/.sessions."""

    def test_help_documents_serving_commands(self, shell):
        output = run_lines(shell, ".help")
        for command in (".begin", ".commit", ".rollback", ".server", ".sessions"):
            assert command in output

    def test_begin_commit_cycle(self, shell):
        output = run_lines(
            shell,
            ".begin",
            "UPDATE c IN Cities SET c.population = 7 WHERE c.name == 'city0'",
            ".commit",
            "SELECT c.population FROM c IN Cities WHERE c.name == 'city0'",
        )
        assert "begin (snapshot csn" in output
        assert "buffered in open transaction" in output
        assert "committed at csn" in output
        assert "c.population=7" in output
        assert shell.transaction is None

    def test_rollback_discards(self, shell):
        output = run_lines(
            shell,
            ".begin",
            "UPDATE c IN Cities SET c.population = 7 WHERE c.name == 'city0'",
            ".rollback",
            "SELECT c.population FROM c IN Cities WHERE c.name == 'city0'",
        )
        assert "rolled back" in output
        assert "c.population=7" not in output

    def test_autocommit_dml_renders_csn(self, shell):
        output = run_lines(
            shell, "INSERT INTO Cities (name, population) VALUES ('cli', 1)"
        )
        assert "insert: 1 object(s) (committed at csn" in output

    def test_nested_begin_and_stray_commit_report_errors(self, shell):
        output = run_lines(
            shell, ".begin", ".begin", ".rollback", ".commit", ".rollback"
        )
        assert "already open" in output
        assert "rolled back" in output
        assert output.count("error: no open transaction") == 2

    def test_server_lifecycle_and_sessions(self, fresh_db):
        # Drive _command directly: run() tears the server down at EOF,
        # and this test needs it alive while a client connects.
        from repro.server import ServerClient

        out = io.StringIO()
        shell = Shell(fresh_db, out=out)
        shell._command(".sessions")
        assert "server not running; use .server start" in out.getvalue()
        shell._command(".server start")
        assert "serving on 127.0.0.1:" in out.getvalue()
        try:
            host, port = shell.server.address
            with ServerClient(host, port) as client:
                client.hello()
                shell._command(".sessions")
                assert "1 session(s)" in out.getvalue()
        finally:
            shell._command(".server stop")
        assert "server stopped" in out.getvalue()
        assert shell.server is None
        shell._command(".server")
        assert "server not running" in out.getvalue()

    def test_eof_rolls_back_and_stops_server(self, shell):
        run_lines(shell, ".server start", ".begin")
        # run() hit EOF, which must have cleaned up both.
        assert shell.server is None
        assert shell.transaction is None


class TestWriteConflictHandling:
    def test_conflict_drops_open_transaction(self, shell):
        # Drive dispatch directly: run() would roll the transaction back
        # itself at EOF, which is not the path under test.
        import pytest

        from repro.errors import WriteConflict

        shell.out = io.StringIO()
        shell.dispatch(".begin")
        assert shell.transaction is not None
        # Another writer commits to city0 after the shell's snapshot.
        shell.db.query(
            "UPDATE x IN Cities SET x.population = 1 WHERE x.name == 'city0'"
        )
        with pytest.raises(WriteConflict):
            shell.dispatch(
                "UPDATE x IN Cities SET x.population = 2 "
                "WHERE x.name == 'city0'"
            )
        assert shell.transaction is None  # dead handle dropped
        # The session keeps working, auto-committed.
        shell.dispatch("SELECT x.name FROM x IN Cities WHERE x.name == 'city0'")
