"""End-to-end tests for EXPLAIN ANALYZE and optimizer tracing.

The acceptance contract: on the paper's Queries 1-3,
``Database.explain(q, analyze=True)`` must report per-operator estimated
vs. actual cardinality and per-operator buffer hits/misses, and the
Query 3 trace must contain an explicit assembly-enforcer event.  With no
tracer passed, the default pipeline must record no events at all.
"""

import json

import pytest

from repro.errors import CatalogError
from repro.obs.tracer import Tracer
from repro.api import Database

from tests.conftest import QUERY_1, QUERY_2, QUERY_3, SCALE

PAPER_QUERIES = {"Q1": QUERY_1, "Q2": QUERY_2, "Q3": QUERY_3}


@pytest.fixture()
def db() -> Database:
    """A private indexed database (reports mutate executor/buffer state)."""
    database = Database.sample(scale=SCALE)
    database.create_index("ix_cities_mayor_name", "Cities", ("mayor", "name"))
    return database


class TestExplainAnalyze:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_queries_report_est_vs_actual(self, db, name):
        report = db.explain_analyze(PAPER_QUERIES[name])
        nodes = list(report.root.walk())
        assert nodes, name
        for node in nodes:
            assert node.est_rows >= 0.0
            assert node.actual_rows >= 0
            assert node.buffer_hits >= 0
            assert node.buffer_misses >= 0
            assert node.cardinality_error >= 1.0
        # Someone actually did I/O: the per-operator attribution accounts
        # for every page read the execution reported.
        assert sum(n.buffer_misses for n in nodes) == report.execution.page_reads
        assert report.execution.rows is not None

    def test_actual_rows_match_query_rows(self, db):
        report = db.explain_analyze(QUERY_2)
        result = db.query(QUERY_2, use_cache=False)
        assert report.root.actual_rows == len(result.rows)

    def test_query3_trace_has_assembly_enforcer_event(self, db):
        report = db.explain_analyze(QUERY_3)
        enforcers = report.events_in("enforcer")
        assert any(e.name == "assembly" for e in enforcers)
        # The winning plan really contains the enforcer the event records.
        rendered = report.render()
        assert "Assembly" in rendered
        assert "(enforcer)" in rendered

    def test_render_carries_est_and_actual(self, db):
        rendered = db.explain_analyze(QUERY_2).render()
        assert "est " in rendered
        assert "act " in rendered
        assert "hits" in rendered
        assert "misses" in rendered

    def test_explain_analyze_flag_on_explain(self, db):
        text = db.explain(QUERY_2, analyze=True)
        assert text.startswith("EXPLAIN ANALYZE")
        assert "act " in text

    def test_explain_without_analyze_does_not_execute(self, db):
        plain = db.explain(QUERY_2)
        assert "act " not in plain

    def test_requires_populated_store(self):
        empty = Database.sample(scale=SCALE, populate=False)
        with pytest.raises(CatalogError):
            empty.explain_analyze(QUERY_2)

    def test_json_export_schema(self, db):
        payload = json.loads(db.explain_analyze(QUERY_3).to_json())
        assert set(payload) == {
            "query",
            "optimizer",
            "execution",
            "plan",
            "events",
        }
        assert payload["optimizer"]["groups"] > 0
        assert payload["execution"]["page_reads"] >= 0

        def check(node):
            assert {"algorithm", "estimated", "actual", "children"} <= set(node)
            assert "rows" in node["estimated"]
            assert "rows" in node["actual"]
            assert "buffer_misses" in node["actual"]
            for child in node["children"]:
                check(child)

        check(payload["plan"])
        assert any(
            e["category"] == "enforcer" and e["name"] == "assembly"
            for e in payload["events"]
        )


class TestTracingCost:
    def test_default_pipeline_records_no_events(self, db):
        result = db.query(QUERY_2, use_cache=False)
        assert result.optimization.trace_events == ()
        assert db.tracer.events == []

    def test_default_execute_has_no_operator_stats(self, db):
        result = db.query(QUERY_2, use_cache=False)
        assert result.execution.operator_stats is None

    def test_optimize_with_tracer_records(self, db):
        tracer = Tracer()
        result = db.optimize(QUERY_2, tracer=tracer)
        assert result.trace_events
        categories = {e.category for e in result.trace_events}
        assert "task" in categories
        assert "phase" in categories

    def test_buffer_scope_stack_empty_after_run(self, db):
        db.explain_analyze(QUERY_2)
        assert db.store.buffer.io_scope_depth == 0


class TestTypeStatisticsWarnings:
    def test_missing_segment_warns_instead_of_silence(self, db):
        db.tracer = Tracer()
        db.collect_type_statistics()
        # The sample schema has types without segments/extents at small
        # scale only if generation skipped them; either way the call must
        # not raise and any skip must be visible as a warning event.
        for event in db.tracer.events:
            assert event.category == "warning"
            assert event.name == "type-statistics"
