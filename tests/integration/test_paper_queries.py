"""Integration tests: the paper's Queries 1-4 produce the figures' plans.

These run against the full-scale *catalog* (statistics only — plan choice
does not need data) with the paper's indexes, checking the structural
claims of Figures 6-13 and the cost relationships behind Tables 2-3.
"""

import pytest

from repro.lang.parser import parse_query
from repro.optimizer import Optimizer, OptimizerConfig
from repro.optimizer import config as C
from repro.optimizer.plans import (
    AlgProjectNode,
    AssemblyNode,
    FileScanNode,
    FilterNode,
    IndexScanNode,
    PhysicalNode,
    PointerJoinNode,
)
from repro.simplify.simplifier import simplify_full

from tests.conftest import QUERY_1, QUERY_2, QUERY_3, QUERY_4


def _optimize(catalog, sql, config=None):
    sq = simplify_full(parse_query(sql), catalog)
    optimizer = Optimizer(catalog, config or OptimizerConfig())
    return optimizer.optimize(sq.tree, result_vars=sq.result_vars)


def _algorithms(plan: PhysicalNode) -> list[str]:
    return [node.algorithm for node in plan.walk()]


class TestQuery1:
    """Figure 6: Mats become hash joins; plants assembled per department."""

    def test_optimal_plan_shape(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_1)
        algos = _algorithms(result.plan)
        assert algos.count("HashJoin") == 2  # department and job joins
        assert "Assembly" in algos or "PointerJoin" in algos
        # Dallas filter runs over departments (1,000), not employees (50,000).
        filter_node = next(
            n for n in result.plan.walk() if isinstance(n, FilterNode)
        )
        assert filter_node.children[0].rows <= 1_000

    def test_assembly_feeds_from_department_extent(self, paper_catalog):
        """The plant is assembled once per department — the figure's point
        that a 'natural' per-employee assembly would be disastrous."""
        result = _optimize(paper_catalog, QUERY_1)
        resolver = next(
            n
            for n in result.plan.walk()
            if isinstance(n, (AssemblyNode, PointerJoinNode))
        )
        assert resolver.rows <= 1_000

    def test_links_traversed_against_pointer_direction(self, paper_catalog):
        """Employee->Department and Employee->Job links are resolved by
        scanning the *referenced* extents — the reverse direction."""
        result = _optimize(paper_catalog, QUERY_1)
        scans = {
            n.collection
            for n in result.plan.walk()
            if isinstance(n, (FileScanNode, IndexScanNode))
        }
        assert "extent(Department)" in scans
        assert "extent(Job)" in scans
        assert "Employees" in scans

    def test_project_on_top(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_1)
        assert isinstance(result.plan, AlgProjectNode)

    def test_pointer_chasing_plan_much_worse(self, paper_catalog):
        """Figure 7 / Table 2: disabling the Mat-to-Join rewrite forces the
        naive navigation strategy, 'more than four times as expensive'."""
        optimal = _optimize(paper_catalog, QUERY_1)
        naive = _optimize(
            paper_catalog, QUERY_1, OptimizerConfig().without(C.MAT_TO_JOIN)
        )
        algos = _algorithms(naive.plan)
        assert "HashJoin" not in algos
        assert naive.cost.total > 4 * optimal.cost.total

    def test_window_ablation(self, paper_catalog):
        """Table 2 rows 2-3: window=1 costs ~1.7x the windowed assembly."""
        no_join = OptimizerConfig().without(C.MAT_TO_JOIN)
        windowed = _optimize(paper_catalog, QUERY_1, no_join)
        naive = _optimize(paper_catalog, QUERY_1, no_join.with_window(1))
        ratio = naive.cost.total / windowed.cost.total
        assert 1.3 < ratio < 2.5


class TestQuery2:
    """Figures 8-9: collapse-to-index-scan answers from the path index."""

    def test_optimal_is_single_index_scan(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_2)
        assert isinstance(result.plan, IndexScanNode)
        assert result.plan.index.name == "ix_cities_mayor_name"
        # Mayors are never fetched.
        assert result.plan.delivered.in_memory == {"c"}

    def test_estimates_two_cities(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_2)
        assert result.plan.rows == pytest.approx(2.0)

    def test_without_collapse_rule_orders_of_magnitude_worse(
        self, paper_catalog
    ):
        """Figure 9's exact plan needs the other escape hatches (hash join
        against extent(Person), pointer join) disabled as well — our
        optimizer otherwise finds fallbacks the paper's comparison plan
        didn't consider."""
        optimal = _optimize(paper_catalog, QUERY_2)
        crippled = _optimize(
            paper_catalog,
            QUERY_2,
            OptimizerConfig().without(
                C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN, C.MAT_TO_JOIN
            ),
        )
        algos = _algorithms(crippled.plan)
        assert algos == ["Filter", "Assembly", "FileScan"]
        # Paper: 0.08 s vs 119.6 s — three to four orders of magnitude.
        assert crippled.cost.total > 100 * optimal.cost.total

    def test_fallback_rewrites_still_beat_naive(self, paper_catalog):
        """Even with the collapse rule off, cost-based search finds a
        set-matching plan far cheaper than assembling every mayor."""
        joined = _optimize(
            paper_catalog, QUERY_2, OptimizerConfig().without(C.COLLAPSE_TO_INDEX_SCAN)
        )
        naive = _optimize(
            paper_catalog,
            QUERY_2,
            OptimizerConfig().without(
                C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN, C.MAT_TO_JOIN
            ),
        )
        assert joined.cost.total < naive.cost.total / 2

    def test_without_index_no_collapse(self, paper_catalog_plain):
        result = _optimize(paper_catalog_plain, QUERY_2)
        assert not isinstance(result.plan, IndexScanNode)


class TestQuery3:
    """Figures 10-11: physical properties drive goal-directed search."""

    def test_enforcer_tops_index_scan(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_3)
        assert isinstance(result.plan, AlgProjectNode)
        assembly = result.plan.children[0]
        assert isinstance(assembly, AssemblyNode)
        assert assembly.enforcer
        assert assembly.out == "c.mayor"
        assert isinstance(assembly.children[0], IndexScanNode)

    def test_only_qualifying_mayors_assembled(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_3)
        assembly = result.plan.children[0]
        assert assembly.children[0].rows == pytest.approx(2.0)

    def test_three_orders_of_magnitude_vs_no_enforcer(self, paper_catalog):
        """Without enforcers the search falls back to assembling every
        mayor: the paper reports 0.12 s vs 119.6 s."""
        optimal = _optimize(paper_catalog, QUERY_3)
        crippled = _optimize(
            paper_catalog,
            QUERY_3,
            OptimizerConfig().without(
                C.ASSEMBLY_ENFORCER, C.COLLAPSE_TO_INDEX_SCAN, C.POINTER_JOIN
            ),
        )
        assert crippled.cost.total > 100 * optimal.cost.total

    def test_enforcer_plan_close_to_query2_cost(self, paper_catalog):
        """Query 3 should cost only slightly more than Query 2 (0.12 vs
        0.08 in the paper): the enforcer adds two fetches."""
        q2 = _optimize(paper_catalog, QUERY_2)
        q3 = _optimize(paper_catalog, QUERY_3)
        assert q3.cost.total < 3 * q2.cost.total


class TestQuery4:
    """Figures 12-13 / Table 3: cost-based beats greedy index use."""

    def test_optimal_uses_only_time_index(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_4)
        index_scans = [
            n for n in result.plan.walk() if isinstance(n, IndexScanNode)
        ]
        assert [s.index.name for s in index_scans] == ["ix_tasks_time"]

    def test_optimal_shape(self, paper_catalog):
        """Filter(name) over reference resolution over unnest over the
        time-index scan — Figure 12 (assembly or pointer-join both realize
        the Mat)."""
        result = _optimize(paper_catalog, QUERY_4)
        algos = _algorithms(result.plan)
        assert algos[0] == "Filter"
        assert algos[-1] == "IndexScan"
        assert "AlgUnnest" in algos
        assert ("Assembly" in algos) or ("PointerJoin" in algos)

    def test_index_subset_ordering(self):
        """Table 3, cost-based column: none > name-only > time-only."""
        from repro.catalog.sample_db import (
            build_catalog,
            index_employees_name,
            index_tasks_time,
        )

        cat_none = build_catalog()
        cat_time = build_catalog()
        cat_time.add_index(index_tasks_time())
        cat_name = build_catalog()
        cat_name.add_index(index_employees_name())
        cost = lambda cat: _optimize(cat, QUERY_4).cost.total
        none_c, time_c, name_c = cost(cat_none), cost(cat_time), cost(cat_name)
        assert none_c > name_c > time_c
        # Paper ratios: 108/1.73 ~ 62, 28.4/1.73 ~ 16.
        assert none_c / time_c > 20
        assert name_c / time_c > 5


class TestSearchTrace:
    """The Figure 11 mechanism, observable in the recorded search states."""

    def test_trace_shows_goal_directed_states(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_3)
        trace = "\n".join(result.search_trace)
        # The same Select group is optimized under the weak and the strong
        # goal, with the index scan winning the weak one and the assembly
        # enforcer the strong one.
        assert "require {c}) -> IndexScan" in trace
        assert "require {c, c.mayor}) -> Assembly" in trace

    def test_trace_records_failures(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_3)
        assert any("no plan" in line for line in result.search_trace)

    def test_trace_ends_with_root_goal(self, paper_catalog):
        result = _optimize(paper_catalog, QUERY_2)
        assert result.search_trace[-1].startswith("optimize(")
        assert "IndexScan" in result.search_trace[-1]
