"""End-to-end tests for parallel (exchange) query execution.

Contract: offering parallelism never changes results — only plan shape
and (on latency-bound scans) wall time.  ``parallelism=1`` must be
byte-for-byte the serial optimizer; parallel plans must merge to exactly
the serial result set (and the serial order, when ordered); EXPLAIN
ANALYZE attribution must stay exact when workers share the buffer pool.
"""

import pytest

from repro.api import Database
from repro.engine.tuples import row_key
from repro.obs.tracer import Tracer
from repro.optimizer.config import EXCHANGE_ENFORCER, OptimizerConfig
from repro.optimizer.physical_props import PhysProps
from repro.optimizer.plans import (
    ExchangeNode,
    FileScanNode,
    PartitionedScanNode,
)

from tests.conftest import SCALE

Q_SCAN = "SELECT * FROM Employee e IN Employees WHERE e.salary > 10000"
Q_ORDERED = (
    "SELECT e.name, e.salary FROM Employee e IN Employees "
    "WHERE e.salary > 10000 ORDER BY e.salary"
)
Q_SMALL = "SELECT * FROM Capital c IN Capitals"


@pytest.fixture(scope="module")
def db() -> Database:
    return Database.sample(scale=SCALE)


def algorithms(plan):
    return [node.algorithm for node in plan.walk()]


class TestPlanShapes:
    def test_large_scan_goes_parallel(self, db):
        result = db.query(Q_SCAN, parallelism=4, execute=False)
        algos = algorithms(result.plan)
        assert "Exchange" in algos
        assert "PartitionedScan" in algos
        exchange = next(
            n for n in result.plan.walk() if isinstance(n, ExchangeNode)
        )
        assert exchange.degree == 4
        assert not exchange.ordered

    def test_parallelism_one_is_byte_for_byte_serial(self, db):
        serial = db.query(Q_SCAN, execute=False, use_cache=False)
        degenerate = db.query(
            Q_SCAN, parallelism=1, execute=False, use_cache=False
        )
        assert repr(degenerate.plan) == repr(serial.plan)
        assert degenerate.plan.pretty(costs=True, props=True) == serial.plan.pretty(
            costs=True, props=True
        )

    def test_small_input_stays_serial(self, db):
        result = db.query(Q_SMALL, parallelism=4, execute=False)
        assert "Exchange" not in algorithms(result.plan)
        assert any(
            isinstance(node, FileScanNode) for node in result.plan.walk()
        )

    def test_exchange_disabled_by_rule_toggle(self, db):
        config = OptimizerConfig().with_parallelism(4).without(EXCHANGE_ENFORCER)
        result = db.query(Q_SCAN, config=config, execute=False)
        assert "Exchange" not in algorithms(result.plan)

    def test_ordered_goal_gets_ordered_merge(self, db):
        result = db.query(Q_ORDERED, parallelism=4, execute=False)
        exchanges = [
            n for n in result.plan.walk() if isinstance(n, ExchangeNode)
        ]
        if not exchanges:
            pytest.skip("cost model kept the ordered query serial at this scale")
        assert all(e.ordered for e in exchanges)

    def test_partitioned_scan_delivers_dop(self, db):
        result = db.query(Q_SCAN, parallelism=4, execute=False)
        scan = next(
            n for n in result.plan.walk() if isinstance(n, PartitionedScanNode)
        )
        assert scan.delivered.dop == 4
        exchange = next(
            n for n in result.plan.walk() if isinstance(n, ExchangeNode)
        )
        assert exchange.delivered.dop == 1


class TestResults:
    def test_parallel_results_match_serial(self, db):
        serial = db.query(Q_SCAN, use_cache=False)
        parallel = db.query(Q_SCAN, parallelism=4, use_cache=False)
        assert sorted(map(row_key, parallel.rows)) == sorted(
            map(row_key, serial.rows)
        )

    def test_ordered_parallel_preserves_order(self, db):
        serial = db.query(Q_ORDERED, use_cache=False)
        parallel = db.query(Q_ORDERED, parallelism=4, use_cache=False)
        assert parallel.rows == serial.rows

    def test_various_degrees(self, db):
        baseline = sorted(
            map(row_key, db.query(Q_SCAN, use_cache=False).rows)
        )
        for degree in (2, 3, 8):
            result = db.query(Q_SCAN, parallelism=degree, use_cache=False)
            assert sorted(map(row_key, result.rows)) == baseline

    def test_cache_keeps_serial_and_parallel_apart(self, db):
        fresh = Database.sample(scale=SCALE)
        serial = fresh.query(Q_SCAN)
        parallel = fresh.query(Q_SCAN, parallelism=4)
        assert serial.cache.outcome == "miss"
        assert parallel.cache.outcome == "miss"  # distinct fingerprint
        again = fresh.query(Q_SCAN, parallelism=4)
        assert again.cache.outcome == "hit"
        assert "Exchange" in algorithms(again.plan)


class TestInstrumentation:
    def test_explain_analyze_attribution_is_exact(self, db):
        config = OptimizerConfig().with_parallelism(4)
        report = db.explain_analyze(Q_SCAN, config=config)
        scan = next(
            node
            for node in report.root.walk()
            if node.description.startswith("Partitioned Scan")
        )
        # Every row of the collection was fetched exactly once across all
        # workers: hits + misses == collection cardinality.
        cardinality = db.store.collection_cardinality("Employees")
        assert scan.buffer_hits + scan.buffer_misses == cardinality
        assert scan.actual_rows == cardinality

    def test_exchange_span_events_recorded(self, db):
        config = OptimizerConfig().with_parallelism(4)
        tracer = Tracer()
        db.explain_analyze(Q_SCAN, config=config, tracer=tracer)
        spans = [e for e in tracer.events if e.category == "exchange"]
        names = [e.name for e in spans]
        assert "start" in names and "merge" in names
        merge = next(e for e in spans if e.name == "merge")
        assert merge.get("degree") == 4
        assert merge.get("rows") > 0
        assert merge.get("seconds") >= 0

    def test_enforcer_event_in_optimizer_trace(self, db):
        tracer = Tracer()
        db.optimize(
            Q_SCAN,
            config=OptimizerConfig().with_parallelism(4),
            tracer=tracer,
        )
        enforcers = [
            e
            for e in tracer.events
            if e.category == "enforcer" and e.name == "exchange"
        ]
        assert enforcers
        assert all(e.get("degree") == 4 for e in enforcers)


class TestPhysicalProps:
    def test_dop_requires_exact_match(self):
        serial = PhysProps.of("x")
        parallel = serial.with_dop(4)
        assert not parallel.satisfies(serial)
        assert not serial.satisfies(parallel)
        assert parallel.satisfies(parallel)

    def test_dop_survives_residency_algebra(self):
        props = PhysProps.of("x").with_dop(3)
        assert props.add("y").dop == 3
        assert props.remove("x").dop == 3
        assert props.union(PhysProps.of("z")).dop == 3
        assert props.restrict(frozenset({"x"})).dop == 3

    def test_is_empty_requires_serial(self):
        assert PhysProps.none().is_empty
        assert not PhysProps.none().with_dop(2).is_empty
